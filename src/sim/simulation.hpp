// Deterministic discrete-event simulation kernel. All grid machinery —
// local resource managers, the MDS information service, the BOINC server and
// its volunteer hosts, and the meta-scheduler — runs as event handlers on
// one Simulation instance, so an entire multi-institution grid run is a
// single-threaded, fully reproducible computation.
//
// Time is a double in seconds from simulation start. Events at equal times
// fire in scheduling order (a monotone sequence number breaks ties), which
// keeps runs reproducible across platforms.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace lattice::obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
class Tracer;
}  // namespace lattice::obs

namespace lattice::sim {

using SimTime = double;

/// Handle for cancelling a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class Simulation;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedule fn at absolute time `when` (>= now). Events in the past are
  /// clamped to now.
  EventHandle at(SimTime when, std::function<void()> fn);

  /// Schedule fn `delay` seconds from now (negative clamps to 0).
  EventHandle after(SimTime delay, std::function<void()> fn);

  /// Cancel a pending event. Returns false if it already fired, was
  /// cancelled, or the handle is empty. The event's closure is dropped
  /// lazily when it reaches the head of the queue.
  bool cancel(EventHandle handle);

  /// Run until the event queue drains or now() would exceed `until`
  /// (default: run to exhaustion). Returns the number of events fired.
  std::uint64_t run(SimTime until = kForever);

  /// Fire at most one event. Returns false when the queue is empty.
  bool step();

  bool empty() const { return pending_ids_.empty(); }
  std::uint64_t events_fired() const { return fired_; }
  std::size_t pending() const { return pending_ids_.size(); }

  /// Attach observability sinks (pass nullptr/nullptr to detach). Records
  /// events fired, pending-queue depth, and per-handler wall time; with a
  /// tracer, samples the queue depth as a Chrome counter track every
  /// `kTraceSamplePeriod` events. Pure observation — enabling this never
  /// changes event order or timing (the test_obs determinism guard).
  void set_observability(obs::MetricsRegistry* metrics, obs::Tracer* tracer);

  /// Queue-depth counter-sampling period (events) when tracing.
  static constexpr std::uint64_t kTraceSamplePeriod = 64;

  static constexpr SimTime kForever = 1e300;

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Scheduled-but-not-fired ids. Audited (ISSUE 3): this set is only ever
  // probed — insert/erase/contains/size — and never iterated, so hash order
  // cannot leak into event order; firing order is fixed entirely by the
  // (when, seq) priority queue above.
  // lattice-lint: allow(unordered-member) — membership queries only, never iterated; event order is owned by the priority queue
  std::unordered_set<std::uint64_t> pending_ids_;

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t fired_ = 0;

  // Observability (null when not attached; see set_observability).
  obs::Counter* obs_events_ = nullptr;
  obs::Gauge* obs_pending_ = nullptr;
  obs::Histogram* obs_handler_us_ = nullptr;
  obs::Tracer* obs_tracer_ = nullptr;
  int obs_track_ = 0;
};

/// Repeating event helper: calls fn every `period` seconds starting at
/// `start` until stop() or the owning Simulation drains. Used for the MDS
/// reporting loops and BOINC daemon polling loops.
class PeriodicTask {
 public:
  PeriodicTask(Simulation& sim, SimTime start, SimTime period,
               std::function<void()> fn);
  ~PeriodicTask() { stop(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool running() const { return running_; }

 private:
  void arm(SimTime when);

  Simulation& sim_;
  SimTime period_;
  std::function<void()> fn_;
  EventHandle next_;
  bool running_ = true;
};

}  // namespace lattice::sim
