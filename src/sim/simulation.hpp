// Deterministic discrete-event simulation kernel. All grid machinery —
// local resource managers, the MDS information service, the BOINC server and
// its volunteer hosts, and the meta-scheduler — runs as event handlers on
// one Simulation instance, so an entire multi-institution grid run is a
// single-threaded, fully reproducible computation.
//
// Time is a double in seconds from simulation start. Events at equal times
// fire in scheduling order (a monotone sequence number breaks ties), which
// keeps runs reproducible across platforms.
//
// Storage layout (the 10⁵-host scalability pass): a 4-ary implicit heap
// holds 24-byte POD entries (when, seq, slot⊕generation), so sift
// operations are plain memmoves over few cache lines; events far in the
// future (beyond kFarWindow) park in an unsorted side vector and are bulk
// heapified only when the near band drains, keeping the hot heap small;
// closures live in a generation-checked slot pool addressed by the heap
// entry, constructed in place with small-buffer storage (EventFn) so
// scheduling an ordinary capture allocates nothing. Cancellation
// destroys the closure eagerly — captured job payloads and host references
// are released immediately — and leaves a tombstone in the heap that is
// dropped lazily, with a full compaction pass once tombstones outnumber
// live entries (DESIGN.md §10).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/band_queue.hpp"
#include "sim/event_fn.hpp"

namespace lattice::obs {
class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;
class Tracer;
}  // namespace lattice::obs

namespace lattice::sim {

/// Handle for cancelling a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return id_ != 0; }

 private:
  friend class Simulation;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedule fn at absolute time `when` (>= now). Events in the past are
  /// clamped to now. Accepts any callable; captures up to
  /// EventFn::kInlineBytes are stored without allocating.
  EventHandle at(SimTime when, EventFn fn);

  /// Schedule fn `delay` seconds from now (negative clamps to 0).
  EventHandle after(SimTime delay, EventFn fn);

  /// Cancel a pending event. Returns false if it already fired, was
  /// cancelled, or the handle is empty. The event's closure is destroyed
  /// eagerly — captured state is released before cancel() returns — while
  /// the heap entry becomes a tombstone removed lazily (or by compaction).
  bool cancel(EventHandle handle);

  /// Run until the event queue drains or now() would exceed `until`
  /// (default: run to exhaustion). Returns the number of events fired.
  std::uint64_t run(SimTime until = kForever);

  /// Fire at most one event. Returns false when the queue is empty.
  bool step();

  bool empty() const { return live_ == 0; }
  std::uint64_t events_fired() const { return fired_; }
  std::size_t pending() const { return live_; }
  /// High-water mark of pending() over the simulation's lifetime.
  std::size_t peak_pending() const { return peak_pending_; }
  /// Queue entries currently occupied by cancelled events (tombstones
  /// awaiting lazy removal or compaction). Exposed for tests/benches.
  std::size_t dead_entries() const { return queue_.entries() - live_; }
  /// Compaction passes performed (tombstone garbage collections).
  std::uint64_t compactions() const { return compactions_; }

  /// Attach observability sinks (pass nullptr/nullptr to detach). Records
  /// events fired, pending-queue depth, and per-handler wall time; with a
  /// tracer, samples the queue depth as a Chrome counter track every
  /// `kTraceSamplePeriod` events. Pure observation — enabling this never
  /// changes event order or timing (the test_obs determinism guard).
  void set_observability(obs::MetricsRegistry* metrics, obs::Tracer* tracer);

  /// Queue-depth counter-sampling period (events) when tracing.
  static constexpr std::uint64_t kTraceSamplePeriod = 64;

  /// Compaction trigger: once the heap holds at least this many entries
  /// and more than half of them are tombstones, the dead entries are
  /// erased and the heap is rebuilt (same strict (when, seq) order, so
  /// firing order is unaffected).
  static constexpr std::size_t kCompactMinEntries = 64;

  static constexpr SimTime kForever = 1e300;

  /// Far-parking window (seconds): events scheduled at or beyond
  /// `far_threshold_` bypass the heap into an unsorted parking vector and
  /// only get heap-ordered when the near band drains past the threshold.
  /// Polling loops and task completions land in the near band; host
  /// lifetime events (power cycles days out, departures weeks out) park.
  static constexpr SimTime kFarWindow = 8.0 * 3600.0;

 private:
  /// POD queue entry; the closure lives in slots_[slot]. (when, seq) is
  /// the strict firing order — see TwoBandQueue.
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
  };
  /// Closure storage with a generation stamp: a heap entry (or handle)
  /// addresses a slot and is valid only while its generation matches, so
  /// cancelled/fired events become tombstones without touching the heap.
  struct Slot {
    EventFn fn;
    std::uint32_t generation = 1;
    std::uint32_t next_free = kNoFreeSlot;
  };
  static constexpr std::uint32_t kNoFreeSlot = 0xffffffffu;

  bool entry_live(const Event& event) const {
    return slots_[event.slot].generation == event.generation;
  }
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void maybe_compact();
  /// Execute one live, already-popped event (shared by run/step).
  void fire(const Event& event);

  /// Two-band storage (4-ary POD heap + far parking, sim/band_queue.hpp):
  /// the heap at 10⁵ hosts holds ~10⁵ pending entries and sift traffic
  /// dominates the kernel, so entries are 24-byte PODs and distant events
  /// park unsorted (DESIGN.md §10).
  TwoBandQueue<Event> queue_{kFarWindow};
  std::vector<Slot> slots_;   // slot pool; freed slots chain via next_free
  std::uint32_t free_head_ = kNoFreeSlot;
  std::size_t live_ = 0;      // scheduled-but-not-fired events
  std::size_t peak_pending_ = 0;
  std::uint64_t compactions_ = 0;

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;

  // Observability (null when not attached; see set_observability).
  obs::Counter* obs_events_ = nullptr;
  obs::Gauge* obs_pending_ = nullptr;
  obs::Histogram* obs_handler_us_ = nullptr;
  obs::Tracer* obs_tracer_ = nullptr;
  int obs_track_ = 0;
};

/// Repeating event helper: calls fn every `period` seconds starting at
/// `start` until stop() or the owning Simulation drains. Used for the MDS
/// reporting loops and BOINC daemon polling loops.
class PeriodicTask {
 public:
  PeriodicTask(Simulation& sim, SimTime start, SimTime period, EventFn fn);
  ~PeriodicTask() { stop(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  void stop();
  bool running() const { return running_; }

 private:
  void arm(SimTime when);

  Simulation& sim_;
  SimTime period_;
  EventFn fn_;
  EventHandle next_;
  bool running_ = true;
};

}  // namespace lattice::sim
