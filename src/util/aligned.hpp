// 64-byte-aligned allocation for the SIMD likelihood kernels. The blocked
// SoA layout (phylo::LikelihoodEngine) keeps every state-major row a
// multiple of 64 bytes, so an aligned *base* pointer makes every row an
// aligned vector load on every ISA tier — no peeling, no split loads
// crossing cache lines.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace lattice::util {

/// Minimal std::allocator drop-in that over-aligns every allocation to
/// `Alignment` bytes (default: one cache line, which also covers the
/// widest vector register in use, 64-byte AVX-512 zmm).
template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "Alignment must be a power of two");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }
};

template <typename T, typename U, std::size_t A>
bool operator==(const AlignedAllocator<T, A>&,
                const AlignedAllocator<U, A>&) noexcept {
  return true;
}

/// std::vector whose data() is 64-byte aligned.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace lattice::util
