// Minimal type-safe "{}" formatting, a std::format stand-in for toolchains
// whose libstdc++ predates <format> (GCC 12). Supports the subset this
// codebase uses:
//   {}        default rendering
//   {:.Nf}    fixed floating point with N digits
//   {:.Ne}    scientific with N digits
//   {:.Ng}    general with N significant digits
//   {:Nd}     integer padded to width N with spaces (right aligned)
//   {{ and }} literal braces
// Mismatched argument counts throw std::runtime_error (format strings here
// are all compile-time literals exercised by tests, so this is a programmer
// error, not an input error).
#pragma once

#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>

namespace lattice::util {

namespace fmt_detail {

inline void append_spec_double(std::string& out, std::string_view spec,
                               double value) {
  char conv = 'g';
  int precision = 6;
  if (!spec.empty()) {
    std::string_view body = spec;
    if (body.front() == '.') {
      body.remove_prefix(1);
      precision = 0;
      while (!body.empty() && body.front() >= '0' && body.front() <= '9') {
        precision = precision * 10 + (body.front() - '0');
        body.remove_prefix(1);
      }
    }
    if (!body.empty() &&
        (body.front() == 'f' || body.front() == 'e' || body.front() == 'g')) {
      conv = body.front();
      body.remove_prefix(1);
    }
    if (!body.empty()) {
      throw std::runtime_error("fmt: unsupported float spec");
    }
  }
  char pattern[8] = {'%', '.', '*', conv, '\0'};
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, pattern, precision, value);
  out += buffer;
}

template <typename T>
void append_value(std::string& out, std::string_view spec, const T& value) {
  if constexpr (std::is_same_v<T, bool>) {
    out += value ? "true" : "false";
  } else if constexpr (std::is_floating_point_v<T>) {
    append_spec_double(out, spec, static_cast<double>(value));
  } else if constexpr (std::is_integral_v<T>) {
    std::string digits = std::to_string(value);
    // Optional width: "{:8d}" pads with spaces on the left.
    if (!spec.empty()) {
      std::string_view body = spec;
      std::size_t width = 0;
      while (!body.empty() && body.front() >= '0' && body.front() <= '9') {
        width = width * 10 + static_cast<std::size_t>(body.front() - '0');
        body.remove_prefix(1);
      }
      if (!body.empty() && body.front() == 'd') body.remove_prefix(1);
      if (!body.empty()) throw std::runtime_error("fmt: unsupported int spec");
      if (digits.size() < width) {
        digits.insert(0, width - digits.size(), ' ');
      }
    }
    out += digits;
  } else if constexpr (std::is_convertible_v<T, std::string_view>) {
    out += std::string_view(value);
  } else if constexpr (std::is_enum_v<T>) {
    out += std::to_string(static_cast<long long>(value));
  } else {
    static_assert(!sizeof(T*), "fmt: unformattable type");
  }
}

inline void format_step(std::string& out, std::string_view& fmt) {
  // Copy text up to the next placeholder; called once more than the number
  // of arguments to flush the tail.
  while (!fmt.empty()) {
    const char ch = fmt.front();
    if (ch == '{') {
      if (fmt.size() >= 2 && fmt[1] == '{') {
        out += '{';
        fmt.remove_prefix(2);
        continue;
      }
      return;  // a real placeholder: caller consumes it
    }
    if (ch == '}') {
      if (fmt.size() >= 2 && fmt[1] == '}') {
        out += '}';
        fmt.remove_prefix(2);
        continue;
      }
      throw std::runtime_error("fmt: stray '}'");
    }
    out += ch;
    fmt.remove_prefix(1);
  }
}

inline std::string_view take_spec(std::string_view& fmt) {
  // fmt starts at '{'. Returns the spec between ':' and '}' (may be empty)
  // and advances past the closing brace.
  fmt.remove_prefix(1);
  std::string_view spec;
  if (!fmt.empty() && fmt.front() == ':') {
    fmt.remove_prefix(1);
    const std::size_t close = fmt.find('}');
    if (close == std::string_view::npos) {
      throw std::runtime_error("fmt: unterminated placeholder");
    }
    spec = fmt.substr(0, close);
    fmt.remove_prefix(close);
  }
  if (fmt.empty() || fmt.front() != '}') {
    throw std::runtime_error("fmt: unterminated placeholder");
  }
  fmt.remove_prefix(1);
  return spec;
}

inline void format_rest(std::string& out, std::string_view fmt) {
  format_step(out, fmt);
  if (!fmt.empty()) {
    throw std::runtime_error("fmt: more placeholders than arguments");
  }
}

template <typename First, typename... Rest>
void format_rest(std::string& out, std::string_view fmt, const First& first,
                 const Rest&... rest) {
  format_step(out, fmt);
  if (fmt.empty()) {
    throw std::runtime_error("fmt: more arguments than placeholders");
  }
  const std::string_view spec = take_spec(fmt);
  append_value(out, spec, first);
  format_rest(out, fmt, rest...);
}

}  // namespace fmt_detail

template <typename... Args>
std::string format(std::string_view fmt, const Args&... args) {
  std::string out;
  out.reserve(fmt.size() + 16 * sizeof...(args));
  fmt_detail::format_rest(out, fmt, args...);
  return out;
}

}  // namespace lattice::util
