#include "util/ini.hpp"

#include <cctype>
#include "util/fmt.hpp"
#include <sstream>
#include <stdexcept>
#include <vector>

namespace lattice::util {

std::string trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

IniFile IniFile::parse(std::string_view text) {
  IniFile file;
  std::string current_section;
  bool in_section = false;
  std::size_t line_number = 0;
  std::istringstream stream{std::string(text)};
  std::string raw;
  while (std::getline(stream, raw)) {
    ++line_number;
    std::string line = trim(raw);
    if (line.empty() || line[0] == '#' || line[0] == ';') continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw std::runtime_error(
            format("ini: line {}: unterminated section header",
                        line_number));
      }
      current_section = trim(std::string_view(line).substr(1, line.size() - 2));
      in_section = true;
      if (file.find_section(current_section) == nullptr) {
        file.sections_.emplace_back(current_section, Section{});
      }
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error(
          format("ini: line {}: expected 'key = value'", line_number));
    }
    if (!in_section) {
      throw std::runtime_error(
          format("ini: line {}: key outside any [section]",
                      line_number));
    }
    std::string key = trim(std::string_view(line).substr(0, eq));
    std::string value = trim(std::string_view(line).substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error(
          format("ini: line {}: empty key", line_number));
    }
    file.set(current_section, key, std::move(value));
  }
  return file;
}

IniFile::Section* IniFile::find_section(const std::string& name) {
  for (auto& [section_name, section] : sections_) {
    if (section_name == name) return &section;
  }
  return nullptr;
}

const IniFile::Section* IniFile::find_section(const std::string& name) const {
  for (const auto& [section_name, section] : sections_) {
    if (section_name == name) return &section;
  }
  return nullptr;
}

bool IniFile::has_section(const std::string& section) const {
  return find_section(section) != nullptr;
}

bool IniFile::has_key(const std::string& section,
                      const std::string& key) const {
  return get(section, key).has_value();
}

std::optional<std::string> IniFile::get(const std::string& section,
                                        const std::string& key) const {
  const Section* s = find_section(section);
  if (s == nullptr) return std::nullopt;
  for (const auto& [k, v] : s->pairs) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::string IniFile::get_or(const std::string& section, const std::string& key,
                            std::string fallback) const {
  auto value = get(section, key);
  return value ? *value : std::move(fallback);
}

double IniFile::get_double(const std::string& section, const std::string& key,
                           double fallback) const {
  auto value = get(section, key);
  if (!value) return fallback;
  try {
    std::size_t used = 0;
    const double parsed = std::stod(*value, &used);
    if (trim(std::string_view(*value).substr(used)).empty()) return parsed;
  } catch (const std::exception&) {
  }
  throw std::runtime_error(format(
      "ini: [{}] {} = '{}' is not a number", section, key, *value));
}

long long IniFile::get_int(const std::string& section, const std::string& key,
                           long long fallback) const {
  auto value = get(section, key);
  if (!value) return fallback;
  try {
    std::size_t used = 0;
    const long long parsed = std::stoll(*value, &used);
    if (trim(std::string_view(*value).substr(used)).empty()) return parsed;
  } catch (const std::exception&) {
  }
  throw std::runtime_error(format(
      "ini: [{}] {} = '{}' is not an integer", section, key, *value));
}

bool IniFile::get_bool(const std::string& section, const std::string& key,
                       bool fallback) const {
  auto value = get(section, key);
  if (!value) return fallback;
  std::string v = *value;
  for (char& ch : v) ch = static_cast<char>(std::tolower(
      static_cast<unsigned char>(ch)));
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::runtime_error(format(
      "ini: [{}] {} = '{}' is not a boolean", section, key, *value));
}

void IniFile::set(const std::string& section, const std::string& key,
                  std::string value) {
  Section* s = find_section(section);
  if (s == nullptr) {
    sections_.emplace_back(section, Section{});
    s = &sections_.back().second;
  }
  for (auto& [k, v] : s->pairs) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  s->pairs.emplace_back(key, std::move(value));
}

std::vector<std::string> IniFile::section_names() const {
  std::vector<std::string> names;
  names.reserve(sections_.size());
  for (const auto& [name, section] : sections_) names.push_back(name);
  return names;
}

std::string IniFile::to_string() const {
  std::ostringstream out;
  bool first = true;
  for (const auto& [name, section] : sections_) {
    if (!first) out << '\n';
    first = false;
    out << '[' << name << "]\n";
    for (const auto& [k, v] : section.pairs) {
      out << k << " = " << v << '\n';
    }
  }
  return out.str();
}

}  // namespace lattice::util
