// GARLI-style configuration parsing. GARLI reads an INI-like "garli.conf"
// with [sections], key = value pairs, # / ; comments. The portal's
// validation mode and the phylo engine's job specs both round-trip through
// this format, mirroring how the real system shipped a garli.conf to every
// compute node.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lattice::util {

class IniFile {
 public:
  /// Parse from text. Throws std::runtime_error with a line number on
  /// malformed input (a key=value line outside any section, or a line that
  /// is neither a section header, a pair, a comment, nor blank).
  static IniFile parse(std::string_view text);

  bool has_section(const std::string& section) const;
  bool has_key(const std::string& section, const std::string& key) const;

  std::optional<std::string> get(const std::string& section,
                                 const std::string& key) const;
  std::string get_or(const std::string& section, const std::string& key,
                     std::string fallback) const;
  /// Typed getters; throw std::runtime_error on a present-but-unparsable
  /// value, return fallback when absent.
  double get_double(const std::string& section, const std::string& key,
                    double fallback) const;
  long long get_int(const std::string& section, const std::string& key,
                    long long fallback) const;
  bool get_bool(const std::string& section, const std::string& key,
                bool fallback) const;

  void set(const std::string& section, const std::string& key,
           std::string value);

  /// Section names in insertion order (for schemas with repeatable,
  /// dotted section families like `[outage.<resource>]`).
  std::vector<std::string> section_names() const;

  /// Serialize back to INI text (sections and keys in insertion order).
  std::string to_string() const;

 private:
  struct Section {
    std::vector<std::pair<std::string, std::string>> pairs;
  };
  // Insertion-ordered storage so round-trips are stable.
  std::vector<std::pair<std::string, Section>> sections_;

  Section* find_section(const std::string& name);
  const Section* find_section(const std::string& name) const;
};

/// Trim ASCII whitespace from both ends.
std::string trim(std::string_view text);

}  // namespace lattice::util
