#include "util/log.hpp"

#include <atomic>
#include <mutex>

namespace lattice::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
// The sink pointer is guarded by g_write_mutex (not atomic): swapping it
// must wait for in-flight writes, or a writer could stream into an object
// the caller of set_log_stream is about to destroy.
std::ostream* g_stream = nullptr;
std::mutex g_write_mutex;

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void set_log_stream(std::ostream* stream) {
  std::scoped_lock lock(g_write_mutex);
  g_stream = stream;
}

namespace detail {
void log_write(LogLevel level, std::string_view component,
               const std::string& message) {
  std::scoped_lock lock(g_write_mutex);
  std::ostream* out = g_stream == nullptr ? &std::clog : g_stream;
  (*out) << '[' << level_name(level) << "] " << component << ": " << message
         << '\n';
}
}  // namespace detail

}  // namespace lattice::util
