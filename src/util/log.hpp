// Minimal leveled logger. Grid components log through this so that tests can
// silence output and examples can raise verbosity.
//
// Thread safety: all entry points are safe to call concurrently (likelihood
// evaluation runs under a thread pool). The level is an atomic read on the
// fast path, so set_log_level may race a concurrent log() only in the benign
// sense that an in-flight message is judged against the old threshold.
// set_log_stream synchronizes with in-flight writes: once it returns, no
// logger thread still references the previous stream, so the caller may
// destroy it. Messages are written whole under one lock and never interleave.
#pragma once

#include <iostream>
#include <string>
#include <string_view>

#include "util/fmt.hpp"

namespace lattice::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Redirect log output (defaults to std::clog). Pass nullptr to restore.
/// Blocks until in-flight writes to the previous stream have finished.
void set_log_stream(std::ostream* stream);

namespace detail {
void log_write(LogLevel level, std::string_view component,
               const std::string& message);
}

template <typename... Args>
void log(LogLevel level, std::string_view component, std::string_view fmt,
         const Args&... args) {
  if (level < log_level()) return;
  detail::log_write(level, component, format(fmt, args...));
}

template <typename... Args>
void log_debug(std::string_view component, std::string_view fmt,
               const Args&... args) {
  log(LogLevel::kDebug, component, fmt, args...);
}
template <typename... Args>
void log_info(std::string_view component, std::string_view fmt,
              const Args&... args) {
  log(LogLevel::kInfo, component, fmt, args...);
}
template <typename... Args>
void log_warn(std::string_view component, std::string_view fmt,
              const Args&... args) {
  log(LogLevel::kWarn, component, fmt, args...);
}
template <typename... Args>
void log_error(std::string_view component, std::string_view fmt,
               const Args&... args) {
  log(LogLevel::kError, component, fmt, args...);
}

}  // namespace lattice::util
