// Minimal leveled logger. Grid components log through this so that tests can
// silence output and examples can raise verbosity.
#pragma once

#include <iostream>
#include <string>
#include <string_view>

#include "util/fmt.hpp"

namespace lattice::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Redirect log output (defaults to std::clog). Pass nullptr to restore.
void set_log_stream(std::ostream* stream);

namespace detail {
void log_write(LogLevel level, std::string_view component,
               const std::string& message);
}

template <typename... Args>
void log(LogLevel level, std::string_view component, std::string_view fmt,
         const Args&... args) {
  if (level < log_level()) return;
  detail::log_write(level, component, format(fmt, args...));
}

template <typename... Args>
void log_debug(std::string_view component, std::string_view fmt,
               const Args&... args) {
  log(LogLevel::kDebug, component, fmt, args...);
}
template <typename... Args>
void log_info(std::string_view component, std::string_view fmt,
              const Args&... args) {
  log(LogLevel::kInfo, component, fmt, args...);
}
template <typename... Args>
void log_warn(std::string_view component, std::string_view fmt,
              const Args&... args) {
  log(LogLevel::kWarn, component, fmt, args...);
}
template <typename... Args>
void log_error(std::string_view component, std::string_view fmt,
               const Args&... args) {
  log(LogLevel::kError, component, fmt, args...);
}

}  // namespace lattice::util
