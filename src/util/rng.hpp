// Deterministic, fast pseudo-random number generation for simulation and
// statistical code. The generator is xoshiro256++ (Blackman & Vigna), seeded
// through SplitMix64 so that nearby seeds produce uncorrelated streams.
//
// Rng satisfies UniformRandomBitGenerator, so it can drive <random>
// distributions, but the member helpers below are preferred: they are
// reproducible across standard-library implementations.
#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>
#include <vector>

namespace lattice::util {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ pseudo-random generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Derive an independent child generator; used to give each simulated
  /// entity its own stream without coupling their sequences.
  Rng split() { return Rng((*this)() ^ 0x6a09e667f3bcc909ULL); }

  /// Raw state access for checkpoint/restore (GARLI checkpointing must
  /// resume the exact random sequence).
  std::array<std::uint64_t, 4> state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) {
    state_ = state;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    assert(n > 0);
    // Lemire's multiply-shift rejection method: unbiased.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (no cached spare: keeps state minimal
  /// and replay-stable).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * std::numbers::pi * u2);
  }

  double normal(double mean, double sd) { return mean + sd * normal(); }

  /// Lognormal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::exp(normal(mu, sigma));
  }

  /// Exponential with the given mean (not rate). mean must be > 0.
  double exponential(double mean) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -mean * std::log(u);
  }

  /// Weibull(shape k, scale λ) by inversion; shape and scale must be > 0.
  /// shape == 1 degenerates to exponential(scale) with the identical draw
  /// sequence, which is what lets fault plans leave churn distributions
  /// untouched by default.
  double weibull(double shape, double scale) {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return scale * std::pow(-std::log(u), 1.0 / shape);
  }

  /// Gamma(shape, scale) via Marsaglia–Tsang; shape > 0.
  double gamma(double shape, double scale) {
    if (shape < 1.0) {
      // Boosting: Gamma(a) = Gamma(a+1) * U^(1/a).
      const double u = std::max(uniform(), 1e-300);
      return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x = normal();
      double v = 1.0 + c * x;
      if (v <= 0.0) continue;
      v = v * v * v;
      const double u = uniform();
      if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
      if (u > 0.0 &&
          std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v)))
        return d * v * scale;
    }
  }

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// PTRS-style normal approximation cutoff for large ones).
  std::uint64_t poisson(double mean) {
    assert(mean >= 0.0);
    if (mean < 30.0) {
      const double limit = std::exp(-mean);
      double prod = uniform();
      std::uint64_t n = 0;
      while (prod > limit) {
        ++n;
        prod *= uniform();
      }
      return n;
    }
    // Normal approximation with continuity correction is adequate for the
    // workload-arrival uses in this codebase.
    const double x = normal(mean, std::sqrt(mean));
    return x <= 0.0 ? 0 : static_cast<std::uint64_t>(x + 0.5);
  }

  /// Pick a uniformly random element of a non-empty container.
  template <typename Container>
  auto& pick(Container& c) {
    assert(!c.empty());
    return c[below(c.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      using std::swap;
      swap(c[i - 1], c[below(i)]);
    }
  }

  /// Sample an index from unnormalized non-negative weights.
  std::size_t weighted_index(std::span<const double> weights) {
    double total = 0.0;
    for (double w : weights) total += w;
    assert(total > 0.0);
    double r = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r <= 0.0) return i;
    }
    return weights.size() - 1;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace lattice::util
