#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace lattice::util {

double sum(std::span<const double> xs) {
  // Kahan summation: benchmark harnesses aggregate millions of runtimes.
  double total = 0.0;
  double comp = 0.0;
  for (double x : xs) {
    const double y = x - comp;
    const double t = total + y;
    comp = (t - total) - y;
    total = t;
  }
  return total;
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double pearson(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double r_squared(std::span<const double> observed,
                 std::span<const double> predicted) {
  assert(observed.size() == predicted.size());
  if (observed.empty()) return 0.0;
  const double m = mean(observed);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ss_tot += (observed[i] - m) * (observed[i] - m);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double mean_squared_error(std::span<const double> observed,
                          std::span<const double> predicted) {
  assert(observed.size() == predicted.size());
  if (observed.empty()) return 0.0;
  double ss = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    ss += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
  }
  return ss / static_cast<double>(observed.size());
}

double mean_absolute_error(std::span<const double> observed,
                           std::span<const double> predicted) {
  assert(observed.size() == predicted.size());
  if (observed.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    total += std::abs(observed[i] - predicted[i]);
  }
  return total / static_cast<double>(observed.size());
}

double mean_absolute_percentage_error(std::span<const double> observed,
                                      std::span<const double> predicted) {
  assert(observed.size() == predicted.size());
  constexpr double kEps = 1e-12;
  double total = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (std::abs(observed[i]) <= kEps) continue;
    total += std::abs((observed[i] - predicted[i]) / observed[i]);
    ++n;
  }
  return n ? total / static_cast<double>(n) : 0.0;
}

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(
      frac * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin + 1);
}

}  // namespace lattice::util
