// Descriptive statistics used throughout the scheduler, the random-forest
// library and the benchmark harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace lattice::util {

double mean(std::span<const double> xs);
/// Sample variance (n-1 denominator); 0 for fewer than two values.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);
double sum(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1]. xs need not be sorted.
double quantile(std::span<const double> xs, double q);
double median(std::span<const double> xs);

/// Pearson correlation; 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Coefficient of determination of predictions vs. observations:
/// 1 - SS_res / SS_tot. Can be negative for predictions worse than the mean.
double r_squared(std::span<const double> observed,
                 std::span<const double> predicted);

double mean_squared_error(std::span<const double> observed,
                          std::span<const double> predicted);
double mean_absolute_error(std::span<const double> observed,
                           std::span<const double> predicted);
/// Mean absolute percentage error over observations with |observed| > eps.
double mean_absolute_percentage_error(std::span<const double> observed,
                                      std::span<const double> predicted);

/// Welford online accumulator for streaming mean/variance.
class RunningStat {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1); 0 for fewer than two values.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [lo, hi); values outside clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace lattice::util
