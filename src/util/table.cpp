#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "util/fmt.hpp"

namespace lattice::util {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

Table& Table::set_precision(int digits) {
  precision_ = digits;
  return *this;
}

void Table::add_row(std::vector<Cell> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<long long>(&cell)) {
    return std::to_string(*i);
  }
  return format("{:." + std::to_string(precision_) + "f}",
                std::get<double>(cell));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      cells.push_back(render_cell(row[c]));
      widths[c] = std::max(widths[c], cells.back().size());
    }
    rendered.push_back(std::move(cells));
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(rule, '-') << '\n';
  for (const auto& row : rendered) emit_row(row);
}

std::string Table::to_string() const {
  std::ostringstream out;
  print(out);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string quoted = "\"";
  for (char ch : field) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "" : ",") << csv_escape(headers_[c]);
  }
  out << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << csv_escape(render_cell(row[c]));
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace lattice::util
