// Column-aligned ASCII tables and CSV output. Every benchmark binary in
// bench/ reports its figures through this so the paper-vs-measured rows are
// uniform and machine-readable.
#pragma once

#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace lattice::util {

/// A table cell: text, integer, or floating point (with per-column
/// precision applied at render time).
using Cell = std::variant<std::string, long long, double>;

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Decimal places used to render double cells (default 3).
  Table& set_precision(int digits);

  void add_row(std::vector<Cell> cells);
  std::size_t rows() const { return rows_.size(); }

  /// Render with padded columns and a header rule.
  void print(std::ostream& out) const;
  std::string to_string() const;

  /// Render as RFC-4180-ish CSV (quotes fields containing commas/quotes).
  std::string to_csv() const;

 private:
  std::string render_cell(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 3;
};

}  // namespace lattice::util
