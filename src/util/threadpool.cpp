#include "util/threadpool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>

namespace lattice::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  // Workers observe stopping_ under the mutex, finish draining the queue,
  // and exit; every future handed out before shutdown resolves.
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body,
                              std::size_t min_chunk) {
  if (n == 0) return;
  if (min_chunk == 0) min_chunk = 1;
  // ~4 chunks per thread (workers + caller) balances ragged workloads
  // without flooding the queue; min_chunk lets callers demand coarser
  // grains when per-index work is tiny.
  const std::size_t grains = 4 * (size() + 1);
  const std::size_t chunk =
      std::max(min_chunk, (n + grains - 1) / grains);
  std::atomic<std::size_t> next{0};
  const auto run = [n, chunk, &body, &next] {
    for (;;) {
      const std::size_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= n) return;
      const std::size_t hi = std::min(n, lo + chunk);
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }
  };
  const std::size_t total_chunks = (n + chunk - 1) / chunk;
  const std::size_t helpers = std::min(size(), total_chunks - 1);
  std::vector<std::future<void>> pending;
  pending.reserve(helpers);
  for (std::size_t h = 0; h < helpers; ++h) pending.push_back(submit(run));
  run();  // caller thread always makes progress, even with a saturated pool
  // Help-while-waiting join. A blocking get() here can deadlock under
  // nesting: with every worker parked in a join like this one, a nested
  // call's helpers sit in the queue with no thread left to pop them.
  // Draining queued tasks while our helpers finish keeps some thread
  // always making progress. (By this point our own range is exhausted, so
  // a stolen task is always someone else's work or a helper that returns
  // immediately — never a reentrant surprise.)
  for (auto& f : pending) {
    while (f.wait_for(std::chrono::seconds(0)) !=
           std::future_status::ready) {
      std::function<void()> task;
      {
        std::scoped_lock lock(mutex_);
        if (!queue_.empty()) {
          task = std::move(queue_.front());
          queue_.pop();
        }
      }
      if (task) {
        task();
      } else {
        f.wait_for(std::chrono::microseconds(50));
      }
    }
  }
}

}  // namespace lattice::util
