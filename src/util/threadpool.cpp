#include "util/threadpool.hpp"

#include <algorithm>

namespace lattice::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t chunks = std::min(n, size());
  if (chunks <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::vector<std::future<void>> pending;
  pending.reserve(chunks);
  const std::size_t per = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per;
    const std::size_t hi = std::min(n, lo + per);
    if (lo >= hi) break;
    pending.push_back(submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    }));
  }
  for (auto& f : pending) f.get();
}

}  // namespace lattice::util
