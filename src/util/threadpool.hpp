// Fixed-size worker pool with a parallel_for helper. Used for embarrassingly
// parallel work inside a single process: training the trees of a random
// forest and evaluating independent likelihood replicates. The simulation
// kernel itself is single-threaded and deterministic; parallelism lives only
// in these leaf computations.
//
// Thread safety and shutdown/enqueue contract (mirrors log.hpp):
//
//  * submit() and parallel_for() are safe to call concurrently from any
//    thread, including from a task already running on a pool worker
//    (parallel_for is reentrant; the caller drains the range itself).
//  * Shutdown drains: the destructor stops intake first, then wakes every
//    worker, and workers keep executing already-queued tasks until the
//    queue is empty before exiting. A future obtained from submit() before
//    the destructor started is therefore always eventually ready.
//  * Enqueue-after-stop is a hard error: once the destructor has started,
//    submit() throws std::runtime_error instead of accepting a task whose
//    future could never resolve. Consequently submit() racing the
//    destructor is a caller lifetime bug — the caller must ensure (as
//    rf::Forest and LikelihoodEngine do, by joining parallel_for before
//    releasing the pool) that no producer outlives the pool. The throw
//    turns such a bug into a loud failure instead of a silent hang, and is
//    asserted by test_util's EnqueueAfterStopThrows.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <vector>

namespace lattice::util {

class ThreadPool {
 public:
  /// threads == 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  /// Stop intake, execute every already-queued task, and join the workers.
  /// Idempotent when called again after returning; must not be called from
  /// two threads at once or from a pool task. The destructor calls this.
  void shutdown();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a task; the future resolves with its result. Throws
  /// std::runtime_error if the pool is shutting down (see the
  /// shutdown/enqueue contract above).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::scoped_lock lock(mutex_);
      if (stopping_) {
        throw std::runtime_error(
            "ThreadPool::submit after shutdown started: the task's future "
            "could never become ready");
      }
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run body(i) for i in [0, n), blocking until all complete. Indices are
  /// claimed in contiguous chunks of at least `min_chunk` from a shared
  /// atomic cursor, so uneven per-index costs still balance. The calling
  /// thread participates in the work, which makes the call reentrant: a
  /// body running on a pool worker may itself call parallel_for on the
  /// same pool without deadlocking, because the caller drains the range
  /// even when every worker is busy.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                    std::size_t min_chunk = 1);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace lattice::util
