// Tests for the application-description subsystem (paper §III): XML app
// specs, generated form schemas, submission validation, and mapping onto
// job configuration — plus the built-in GARLI description end to end.
#include <gtest/gtest.h>

#include "core/appspec.hpp"
#include "phylo/garli.hpp"

namespace lattice::core {
namespace {

constexpr const char* kTinySpec = R"xml(
<?xml version="1.0"?>
<!-- demo application -->
<application name="demo" version="1.1">
  <param name="mode" kind="choice" required="true" label="Mode">
    <choice>fast</choice>
    <choice>thorough</choice>
  </param>
  <param name="iterations" kind="int" min="1" max="100" default="10"
         config="search.iterations"/>
  <param name="tolerance" kind="real" min="0" max="1" default="0.01"/>
  <param name="verbose" kind="flag" default="false"/>
  <param name="input" kind="infile" required="true" label="Input file"/>
  <param name="comment" kind="string"/>
</application>
)xml";

TEST(AppSpec, ParsesStructure) {
  const AppDescription app = AppDescription::parse_xml(kTinySpec);
  EXPECT_EQ(app.name, "demo");
  EXPECT_EQ(app.version, "1.1");
  ASSERT_EQ(app.parameters.size(), 6u);
  const AppParameter* mode = app.find("mode");
  ASSERT_NE(mode, nullptr);
  EXPECT_EQ(mode->kind, ParamKind::kChoice);
  EXPECT_TRUE(mode->required);
  EXPECT_EQ(mode->choices.size(), 2u);
  const AppParameter* iterations = app.find("iterations");
  ASSERT_NE(iterations, nullptr);
  EXPECT_EQ(iterations->config_key, "search.iterations");
  ASSERT_TRUE(iterations->min.has_value());
  EXPECT_DOUBLE_EQ(*iterations->min, 1.0);
}

TEST(AppSpec, ParseErrors) {
  EXPECT_THROW(AppDescription::parse_xml("<bogus/>"), std::runtime_error);
  EXPECT_THROW(AppDescription::parse_xml("<application/>"),
               std::runtime_error);
  EXPECT_THROW(AppDescription::parse_xml(
                   "<application name=\"x\"><param/></application>"),
               std::runtime_error);
  EXPECT_THROW(
      AppDescription::parse_xml(
          "<application name=\"x\">"
          "<param name=\"p\" kind=\"warp\"/></application>"),
      std::runtime_error);
  // choice without choices
  EXPECT_THROW(
      AppDescription::parse_xml(
          "<application name=\"x\">"
          "<param name=\"p\" kind=\"choice\"/></application>"),
      std::runtime_error);
  // duplicate parameter
  EXPECT_THROW(
      AppDescription::parse_xml(
          "<application name=\"x\">"
          "<param name=\"p\"/><param name=\"p\"/></application>"),
      std::runtime_error);
  // malformed XML
  EXPECT_THROW(AppDescription::parse_xml("<application name=\"x\">"),
               std::runtime_error);
  EXPECT_THROW(AppDescription::parse_xml(
                   "<application name=\"x\"></wrong>"),
               std::runtime_error);
}

TEST(AppSpec, ValidationAcceptsGoodSubmission) {
  const AppDescription app = AppDescription::parse_xml(kTinySpec);
  const auto problems = app.validate({{"mode", "fast"},
                                      {"iterations", "50"},
                                      {"input", "data.fasta"}});
  EXPECT_TRUE(problems.empty()) << problems.front();
}

TEST(AppSpec, ValidationCatchesEverything) {
  const AppDescription app = AppDescription::parse_xml(kTinySpec);
  // Missing required, unknown key, out-of-range int, non-integer, bad
  // choice, bad flag.
  auto problems = app.validate({});
  EXPECT_EQ(problems.size(), 2u);  // mode and input are required

  problems = app.validate({{"mode", "fast"},
                           {"input", "x"},
                           {"nonsense", "1"}});
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("unknown"), std::string::npos);

  problems = app.validate({{"mode", "slow"}, {"input", "x"}});
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("choices"), std::string::npos);

  problems = app.validate(
      {{"mode", "fast"}, {"input", "x"}, {"iterations", "500"}});
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("<="), std::string::npos);

  problems = app.validate(
      {{"mode", "fast"}, {"input", "x"}, {"iterations", "2.5"}});
  ASSERT_EQ(problems.size(), 1u);

  problems = app.validate(
      {{"mode", "fast"}, {"input", "x"}, {"verbose", "maybe"}});
  ASSERT_EQ(problems.size(), 1u);

  problems = app.validate(
      {{"mode", "fast"}, {"input", "x"}, {"tolerance", "abc"}});
  ASSERT_EQ(problems.size(), 1u);
}

TEST(AppSpec, RenderFormMentionsEveryParameter) {
  const AppDescription app = AppDescription::parse_xml(kTinySpec);
  const std::string form = app.render_form();
  for (const AppParameter& param : app.parameters) {
    EXPECT_NE(form.find(param.name), std::string::npos) << param.name;
  }
  EXPECT_NE(form.find("*required*"), std::string::npos);
  EXPECT_NE(form.find("choices={fast,thorough}"), std::string::npos);
}

TEST(AppSpec, ToConfigAppliesDefaultsAndMappings) {
  const AppDescription app = AppDescription::parse_xml(kTinySpec);
  const util::IniFile ini = app.to_config(
      {{"mode", "thorough"}, {"input", "data.fasta"}});
  EXPECT_EQ(ini.get_or("general", "mode", ""), "thorough");
  // Default routed through the custom section.key mapping.
  EXPECT_EQ(ini.get_int("search", "iterations", 0), 10);
  EXPECT_DOUBLE_EQ(ini.get_double("general", "tolerance", 0.0), 0.01);
}

TEST(AppSpec, ToConfigRejectsInvalid) {
  const AppDescription app = AppDescription::parse_xml(kTinySpec);
  EXPECT_THROW(app.to_config({{"mode", "warp"}}), std::invalid_argument);
}

TEST(AppSpec, GarliDescriptionRoundTripsToRunnableJob) {
  const AppDescription& app = garli_app_description();
  // The Figure-1 form submission, as the portal would collect it.
  const std::map<std::string, std::string> form_values{
      {"datatype", "nucleotide"}, {"ratematrix", "gtr"},
      {"ratehetmodel", "gamma"},  {"numratecats", "4"},
      {"searchreps", "3"},        {"genthreshfortopoterm", "300"},
      {"sequencefile", "upload.fasta"},
      {"email", "user@example.org"}};
  const auto problems = app.validate(form_values);
  ASSERT_TRUE(problems.empty()) << problems.front();
  const util::IniFile ini = app.to_config(form_values);
  const phylo::GarliJob job = phylo::GarliJob::from_config(ini.to_string());
  EXPECT_EQ(job.model.nuc_model, phylo::NucModel::kGTR);
  EXPECT_EQ(job.model.rate_het, phylo::RateHet::kGamma);
  EXPECT_EQ(job.search_replicates, 3u);
  EXPECT_EQ(job.genthresh, 300u);
}

TEST(AppSpec, GarliDescriptionEnforcesPortalLimits) {
  const AppDescription& app = garli_app_description();
  const auto problems = app.validate({{"datatype", "nucleotide"},
                                      {"searchreps", "5000"},
                                      {"sequencefile", "x"},
                                      {"email", "a@b.c"}});
  ASSERT_EQ(problems.size(), 1u);  // searchreps over the 2000 cap
}

}  // namespace
}  // namespace lattice::core
