// Tests for the desktop-grid substrate: workunit/result lifecycle, host
// churn with checkpoint-preserving downtime, deadline timeout + reissue by
// the transitioner, quorum validation with flawed hosts, wasted-duplicate
// accounting, and the BOINC scheduler adapter.
#include <gtest/gtest.h>

#include "boinc/adapter.hpp"
#include "boinc/server.hpp"
#include "sim/simulation.hpp"

namespace lattice::boinc {
namespace {

grid::GridJob make_job(std::uint64_t id, double runtime) {
  grid::GridJob job;
  job.id = id;
  job.true_reference_runtime = runtime;
  return job;
}

BoincPoolConfig reliable_pool(std::size_t hosts) {
  BoincPoolConfig config;
  config.hosts = hosts;
  config.mean_on_hours = 10000.0;  // effectively always on
  config.mean_off_hours = 0.001;
  config.mean_lifetime_days = 1e6;
  config.host_error_probability = 0.0;
  config.seed = 42;
  return config;
}

TEST(Boinc, CompletesWorkOnReliableHosts) {
  sim::Simulation sim;
  BoincServer server(sim, "boinc", reliable_pool(20));
  int completed = 0;
  server.set_completion_callback(
      [&](grid::GridJob& job, const grid::JobOutcome& outcome) {
        EXPECT_TRUE(outcome.completed());
        EXPECT_EQ(job.state, grid::JobState::kCompleted);
        ++completed;
      });
  std::vector<grid::GridJob> jobs;
  jobs.reserve(10);
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(make_job(static_cast<std::uint64_t>(i + 1), 3600.0));
  }
  for (auto& job : jobs) server.submit(job);
  sim.run(30.0 * 86400.0);
  EXPECT_EQ(completed, 10);
  EXPECT_GT(server.total_cpu_seconds(), 0.0);
}

TEST(Boinc, ChurnDelaysButCheckpointingPreservesProgress) {
  sim::Simulation sim;
  BoincPoolConfig config;
  config.hosts = 5;
  config.mean_on_hours = 2.0;
  config.mean_off_hours = 6.0;
  config.mean_lifetime_days = 1e6;
  config.host_error_probability = 0.0;
  config.default_delay_bound = 60.0 * 86400.0;
  config.seed = 9;
  BoincServer server(sim, "boinc", config);
  int completed = 0;
  server.set_completion_callback(
      [&](grid::GridJob&, const grid::JobOutcome& outcome) {
        if (outcome.completed()) ++completed;
      });
  // 8h of reference work against 2h mean uptime stretches: only possible
  // because progress survives downtime.
  std::vector<grid::GridJob> jobs;
  jobs.reserve(5);
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(make_job(static_cast<std::uint64_t>(i + 1), 8.0 * 3600.0));
  }
  for (auto& job : jobs) server.submit(job);
  sim.run(120.0 * 86400.0);
  EXPECT_EQ(completed, 5);
}

TEST(Boinc, DepartedHostTriggersDeadlineReissue) {
  sim::Simulation sim;
  BoincPoolConfig config;
  config.hosts = 3;
  config.mean_on_hours = 10000.0;
  config.mean_off_hours = 0.001;
  config.mean_lifetime_days = 0.05;  // hosts die after ~1.2h
  config.host_error_probability = 0.0;
  config.default_delay_bound = 6.0 * 3600.0;
  config.transitioner_period = 600.0;
  config.seed = 17;
  BoincServer server(sim, "boinc", config);
  server.set_completion_callback(
      [&](grid::GridJob&, const grid::JobOutcome&) {});
  auto job = make_job(1, 4.0 * 3600.0);
  server.submit(job);
  sim.run(10.0 * 86400.0);
  // All hosts depart quickly; the transitioner must have timed out and
  // reissued at least once before the pool went extinct.
  EXPECT_GE(server.timed_out_results() + server.reissued_results(), 1u);
}

TEST(Boinc, TightDeadlineCausesTimeouts) {
  sim::Simulation sim;
  BoincPoolConfig config;
  config.hosts = 10;
  config.mean_on_hours = 2.0;
  config.mean_off_hours = 10.0;
  config.mean_lifetime_days = 1e6;
  config.host_error_probability = 0.0;
  // Deadline far too tight for 4h of work on intermittent hosts.
  config.default_delay_bound = 2.0 * 3600.0;
  config.seed = 23;
  BoincServer server(sim, "boinc", config);
  int completed = 0;
  server.set_completion_callback(
      [&](grid::GridJob&, const grid::JobOutcome& outcome) {
        if (outcome.completed()) ++completed;
      });
  std::vector<grid::GridJob> jobs;
  jobs.reserve(5);
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(make_job(static_cast<std::uint64_t>(i + 1), 4.0 * 3600.0));
  }
  for (auto& job : jobs) server.submit(job);
  sim.run(60.0 * 86400.0);
  EXPECT_GT(server.timed_out_results(), 0u);
}

TEST(Boinc, QuorumTwoCatchesFlawedHosts) {
  sim::Simulation sim;
  BoincPoolConfig config = reliable_pool(30);
  config.host_error_probability = 0.3;
  config.min_quorum = 2;
  config.target_nresults = 2;
  config.max_total_results = 12;
  config.seed = 31;
  BoincServer server(sim, "boinc", config);
  int completed = 0;
  server.set_completion_callback(
      [&](grid::GridJob&, const grid::JobOutcome& outcome) {
        if (outcome.completed()) ++completed;
      });
  std::vector<grid::GridJob> jobs;
  jobs.reserve(6);
  for (int i = 0; i < 6; ++i) {
    jobs.push_back(make_job(static_cast<std::uint64_t>(i + 1), 1800.0));
  }
  for (auto& job : jobs) server.submit(job);
  sim.run(60.0 * 86400.0);
  EXPECT_EQ(completed, 6);
  // Each workunit needed >= 2 agreeing results.
  for (const auto& [id, wu] : server.workunits()) {
    EXPECT_EQ(wu.state, WorkunitState::kValidated);
    EXPECT_GE(wu.successes(), 2);
  }
}

TEST(Boinc, RedundancyProducesWastedDuplicates) {
  sim::Simulation sim;
  BoincPoolConfig config = reliable_pool(30);
  config.target_nresults = 3;  // send 3 copies, quorum 1
  config.min_quorum = 1;
  config.seed = 37;
  BoincServer server(sim, "boinc", config);
  server.set_completion_callback(
      [&](grid::GridJob&, const grid::JobOutcome&) {});
  std::vector<grid::GridJob> jobs;
  jobs.reserve(4);
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(make_job(static_cast<std::uint64_t>(i + 1), 3600.0));
  }
  for (auto& job : jobs) server.submit(job);
  sim.run(30.0 * 86400.0);
  // Copies of already-validated workunits are wasted: either they ran to
  // completion after validation (wasted duplicates) or the server aborted
  // them mid-flight (discarded checkpointed progress). Either way, the
  // total CPU burned exceeds the useful single-result work.
  EXPECT_GT(server.wasted_duplicate_cpu_seconds() +
                server.discarded_cpu_seconds() + server.total_cpu_seconds(),
            4.0 * 3600.0);
  EXPECT_GT(server.wasted_duplicate_cpu_seconds() +
                server.discarded_cpu_seconds(),
            0.0);
}

TEST(Boinc, CancelAbortsOutstandingWork) {
  sim::Simulation sim;
  BoincServer server(sim, "boinc", reliable_pool(5));
  bool cancelled = false;
  server.set_completion_callback(
      [&](grid::GridJob& job, const grid::JobOutcome& outcome) {
        cancelled = !outcome.completed() &&
                    job.state == grid::JobState::kCancelled;
      });
  auto job = make_job(1, 100000.0);
  server.submit(job);
  sim.after(3600.0, [&] { server.cancel(1); });
  sim.run(2.0 * 86400.0);
  EXPECT_TRUE(cancelled);
}

TEST(Boinc, PerJobDeadlineOverride) {
  sim::Simulation sim;
  BoincServer server(sim, "boinc", reliable_pool(5));
  server.set_completion_callback(
      [&](grid::GridJob&, const grid::JobOutcome&) {});
  server.set_delay_bound(1, 12345.0);
  auto job = make_job(1, 600.0);
  server.submit(job);
  const auto& workunits = server.workunits();
  ASSERT_EQ(workunits.size(), 1u);
  EXPECT_DOUBLE_EQ(workunits.begin()->second.delay_bound, 12345.0);
  auto other = make_job(2, 600.0);
  server.submit(other);
  EXPECT_DOUBLE_EQ(server.workunits().rbegin()->second.delay_bound,
                   server.config().default_delay_bound);
  sim.run(86400.0);
}

TEST(Boinc, InfoAdvertisesUnstablePool) {
  sim::Simulation sim;
  BoincServer server(sim, "boinc", reliable_pool(25));
  const grid::ResourceInfo info = server.info();
  EXPECT_EQ(info.kind, grid::ResourceKind::kBoincPool);
  EXPECT_EQ(info.total_slots, 25u);
  EXPECT_FALSE(info.stable);
  EXPECT_FALSE(info.mpi_capable);
}

TEST(Boinc, AdapterWorkunitTemplate) {
  sim::Simulation sim;
  BoincServer server(sim, "boinc", reliable_pool(5));
  BoincAdapter adapter(server);
  grid::GridJob job = make_job(9, 100.0);
  job.estimated_reference_runtime = 5000.0;
  const std::string tmpl = adapter.translate(job);
  EXPECT_NE(tmpl.find("<name>garli-9</name>"), std::string::npos);
  EXPECT_NE(tmpl.find("<rsc_fpops_est>5000e9</rsc_fpops_est>"),
            std::string::npos);
  EXPECT_NE(tmpl.find("<min_quorum>1</min_quorum>"), std::string::npos);
}

TEST(Boinc, AdapterSubmitWithDeadline) {
  sim::Simulation sim;
  BoincServer server(sim, "boinc", reliable_pool(5));
  server.set_completion_callback(
      [&](grid::GridJob&, const grid::JobOutcome&) {});
  BoincAdapter adapter(server);
  auto job = make_job(1, 600.0);
  adapter.submit_with_deadline(job, 9999.0);
  ASSERT_EQ(server.workunits().size(), 1u);
  EXPECT_DOUBLE_EQ(server.workunits().begin()->second.delay_bound, 9999.0);
  sim.run(86400.0);
}

TEST(Boinc, CreditGrantedForValidatedWork) {
  sim::Simulation sim;
  BoincServer server(sim, "boinc", reliable_pool(10));
  server.set_completion_callback(
      [&](grid::GridJob&, const grid::JobOutcome&) {});
  std::vector<grid::GridJob> jobs;
  jobs.reserve(5);
  for (int i = 0; i < 5; ++i) {
    jobs.push_back(make_job(static_cast<std::uint64_t>(i + 1), 3600.0));
  }
  for (auto& job : jobs) server.submit(job);
  sim.run(10.0 * 86400.0);
  // 5 workunits of 3600 reference seconds -> 5 * 36 cobblestones total.
  EXPECT_NEAR(server.total_credit(), 5.0 * 36.0, 1e-9);
  const auto board = server.credit_leaderboard();
  ASSERT_FALSE(board.empty());
  EXPECT_GT(board.front().second, 0.0);
  for (std::size_t i = 1; i < board.size(); ++i) {
    EXPECT_GE(board[i - 1].second, board[i].second);
  }
  EXPECT_DOUBLE_EQ(server.host_credit(999999), 0.0);
}

TEST(Boinc, FlawedResultsEarnNoCredit) {
  sim::Simulation sim;
  BoincPoolConfig config = reliable_pool(20);
  config.host_error_probability = 0.5;
  config.min_quorum = 2;
  config.target_nresults = 2;
  config.max_total_results = 20;
  config.seed = 77;
  BoincServer server(sim, "boinc", config);
  server.set_completion_callback(
      [&](grid::GridJob&, const grid::JobOutcome&) {});
  auto job = make_job(1, 1800.0);
  server.submit(job);
  sim.run(30.0 * 86400.0);
  ASSERT_EQ(job.state, grid::JobState::kCompleted);
  // Credit went only to the agreeing (correct) results: exactly the
  // canonical-vote count times the per-result credit.
  const auto& wu = server.workunits().begin()->second;
  int canonical_count = 0;
  for (const auto& result : wu.results) {
    if (result.state == ResultState::kSuccess && result.output_hash == 0) {
      ++canonical_count;
    }
  }
  EXPECT_NEAR(server.total_credit(),
              canonical_count * 1800.0 / 100.0, 1e-9);
}

TEST(Boinc, AdaptiveReplicationCrossChecksUnprovenHosts) {
  sim::Simulation sim;
  BoincPoolConfig config = reliable_pool(20);
  config.adaptive_replication = true;
  config.trust_threshold = 3;
  config.min_quorum = 1;
  config.target_nresults = 1;
  config.max_total_results = 8;
  config.seed = 91;
  BoincServer server(sim, "boinc", config);
  server.set_completion_callback(
      [&](grid::GridJob&, const grid::JobOutcome&) {});
  std::vector<grid::GridJob> jobs(4);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = i + 1;
    jobs[i].true_reference_runtime = 600.0;
    server.submit(jobs[i]);
  }
  sim.run(10.0 * 86400.0);
  // Every workunit validated, but each needed >= 2 agreeing results while
  // all hosts were unproven.
  for (const auto& [id, wu] : server.workunits()) {
    EXPECT_EQ(wu.state, WorkunitState::kValidated);
    EXPECT_GE(wu.successes(), 2);
  }
}

TEST(Boinc, TrustedHostsSkipTheCrossCheck) {
  sim::Simulation sim;
  BoincPoolConfig config = reliable_pool(2);  // tiny pool gains trust fast
  config.adaptive_replication = true;
  config.trust_threshold = 2;
  config.seed = 93;
  BoincServer server(sim, "boinc", config);
  server.set_completion_callback(
      [&](grid::GridJob&, const grid::JobOutcome&) {});
  // Submit sequentially so trust accrues between submissions (concurrent
  // submissions all report before any host is proven, so all would be
  // cross-checked).
  std::vector<grid::GridJob> jobs(8);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = i + 1;
    jobs[i].true_reference_runtime = 600.0;
    sim.at(static_cast<double>(i) * 86400.0,
           [&server, &jobs, i] { server.submit(jobs[i]); });
  }
  sim.run(30.0 * 86400.0);
  // Both hosts end up trusted...
  EXPECT_TRUE(server.host_trusted(1));
  EXPECT_TRUE(server.host_trusted(2));
  // ...early workunits were cross-checked, late ones validate singly.
  const auto& first = server.workunits().begin()->second;
  const auto& last = server.workunits().rbegin()->second;
  EXPECT_EQ(first.state, WorkunitState::kValidated);
  EXPECT_GE(first.successes(), 2);
  EXPECT_EQ(last.state, WorkunitState::kValidated);
  EXPECT_EQ(last.successes(), 1);
}

TEST(Boinc, DisagreementResetsTrustStreak) {
  sim::Simulation sim;
  BoincPoolConfig config = reliable_pool(10);
  config.host_error_probability = 0.4;
  config.min_quorum = 2;
  config.target_nresults = 2;
  config.max_total_results = 16;
  config.seed = 97;
  BoincServer server(sim, "boinc", config);
  server.set_completion_callback(
      [&](grid::GridJob&, const grid::JobOutcome&) {});
  std::vector<grid::GridJob> jobs(10);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = i + 1;
    jobs[i].true_reference_runtime = 600.0;
    server.submit(jobs[i]);
  }
  sim.run(30.0 * 86400.0);
  // With a 40% error rate some host must have had its streak reset; the
  // streaks can never exceed the number of validated workunits.
  for (std::uint64_t host = 1; host <= 10; ++host) {
    EXPECT_LE(server.host_valid_streak(host), 10);
  }
  EXPECT_EQ(server.host_valid_streak(424242), 0);
}

TEST(Boinc, OnlineHostCountTracksChurn) {
  sim::Simulation sim;
  BoincPoolConfig config;
  config.hosts = 200;
  config.mean_on_hours = 8.0;
  config.mean_off_hours = 16.0;
  config.mean_lifetime_days = 1e6;
  config.seed = 41;
  BoincServer server(sim, "boinc", config);
  sim.run(86400.0);
  const double online = static_cast<double>(server.online_hosts());
  // Expect roughly the availability fraction (8/24) of 200 hosts.
  EXPECT_GT(online, 30.0);
  EXPECT_LT(online, 110.0);
}

}  // namespace
}  // namespace lattice::boinc
