// Tests for the ClassAd expression subset: parsing, three-valued logic,
// comparisons, arithmetic, UNDEFINED semantics, the generated job
// requirements expression, and machine-level matchmaking in CondorPool.
#include <gtest/gtest.h>

#include "grid/adapter.hpp"
#include "grid/classad.hpp"
#include "grid/resource.hpp"
#include "sim/simulation.hpp"

namespace lattice::grid {
namespace {

ClassAd linux_box(double memory_mb) {
  return ClassAd{{"OpSys", std::string("LINUX")},
                 {"Arch", std::string("X86_64")},
                 {"Memory", memory_mb}};
}

TEST(ClassAdExpr, LiteralsAndAttributes) {
  EXPECT_TRUE(AdExpression::parse("TRUE").matches({}));
  EXPECT_FALSE(AdExpression::parse("FALSE").matches({}));
  EXPECT_FALSE(AdExpression::parse("UNDEFINED").matches({}));
  const auto expr = AdExpression::parse("Memory");
  const AdValue value = expr.evaluate(linux_box(2048));
  EXPECT_DOUBLE_EQ(std::get<double>(value), 2048.0);
}

TEST(ClassAdExpr, ComparisonsNumeric) {
  const ClassAd ad = linux_box(2048);
  EXPECT_TRUE(AdExpression::parse("Memory >= 1024").matches(ad));
  EXPECT_TRUE(AdExpression::parse("Memory == 2048").matches(ad));
  EXPECT_FALSE(AdExpression::parse("Memory > 2048").matches(ad));
  EXPECT_TRUE(AdExpression::parse("Memory != 0").matches(ad));
  EXPECT_TRUE(AdExpression::parse("Memory < 4096").matches(ad));
  EXPECT_TRUE(AdExpression::parse("Memory <= 2048").matches(ad));
}

TEST(ClassAdExpr, ComparisonsString) {
  const ClassAd ad = linux_box(2048);
  EXPECT_TRUE(AdExpression::parse("OpSys == \"LINUX\"").matches(ad));
  EXPECT_FALSE(AdExpression::parse("OpSys == \"WINDOWS\"").matches(ad));
  EXPECT_TRUE(AdExpression::parse("OpSys != \"WINDOWS\"").matches(ad));
}

TEST(ClassAdExpr, BooleanLogicAndPrecedence) {
  const ClassAd ad = linux_box(2048);
  EXPECT_TRUE(AdExpression::parse(
                  "OpSys == \"LINUX\" && Memory >= 1024").matches(ad));
  EXPECT_TRUE(AdExpression::parse(
                  "OpSys == \"WINDOWS\" || Memory >= 1024").matches(ad));
  EXPECT_FALSE(AdExpression::parse(
                   "OpSys == \"WINDOWS\" && Memory >= 1024").matches(ad));
  // || binds looser than &&.
  EXPECT_TRUE(AdExpression::parse(
                  "FALSE && FALSE || TRUE").matches(ad));
  EXPECT_TRUE(AdExpression::parse("!(Memory < 1024)").matches(ad));
  EXPECT_FALSE(AdExpression::parse("!TRUE").matches(ad));
}

TEST(ClassAdExpr, Arithmetic) {
  const ClassAd ad{{"Cpus", 4.0}, {"Memory", 2048.0}};
  EXPECT_TRUE(AdExpression::parse("Memory / Cpus >= 512").matches(ad));
  EXPECT_TRUE(AdExpression::parse("Cpus * 2 == 8").matches(ad));
  EXPECT_TRUE(AdExpression::parse("Memory - 48 == 2000").matches(ad));
  EXPECT_TRUE(AdExpression::parse("Memory + 0 == 2048").matches(ad));
  // Division by zero is UNDEFINED, which does not match.
  EXPECT_FALSE(AdExpression::parse("Memory / 0 == 1").matches(ad));
}

TEST(ClassAdExpr, UndefinedSemantics) {
  const ClassAd empty;
  // Missing attribute -> UNDEFINED -> no match.
  EXPECT_FALSE(AdExpression::parse("Memory >= 1024").matches(empty));
  // Condor three-valued logic: FALSE dominates UNDEFINED.
  EXPECT_FALSE(AdExpression::parse("Memory >= 1024 && FALSE").matches(empty));
  // TRUE dominates UNDEFINED for OR.
  EXPECT_TRUE(AdExpression::parse("Memory >= 1024 || TRUE").matches(empty));
  // UNDEFINED && TRUE stays UNDEFINED.
  EXPECT_FALSE(AdExpression::parse("Memory >= 1024 && TRUE").matches(empty));
}

TEST(ClassAdExpr, TypeMismatchesAreUndefined) {
  const ClassAd ad = linux_box(2048);
  EXPECT_FALSE(AdExpression::parse("OpSys == 5").matches(ad));
  EXPECT_FALSE(AdExpression::parse("Memory == \"LINUX\"").matches(ad));
}

TEST(ClassAdExpr, ParseErrors) {
  EXPECT_THROW(AdExpression::parse(""), std::runtime_error);
  EXPECT_THROW(AdExpression::parse("(Memory >= 1"), std::runtime_error);
  EXPECT_THROW(AdExpression::parse("Memory >="), std::runtime_error);
  EXPECT_THROW(AdExpression::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(AdExpression::parse("Memory ? 5"), std::runtime_error);
}

TEST(ClassAdExpr, GeneratedRequirementsExpression) {
  GridJob job;
  EXPECT_EQ(condor_requirements_expression(job), "TRUE");
  job.requirements.platforms = {PlatformSpec{OsType::kLinux, Arch::kX86_64}};
  job.requirements.min_memory_gb = 2.0;
  const std::string expr = condor_requirements_expression(job);
  const AdExpression parsed = AdExpression::parse(expr);
  EXPECT_TRUE(parsed.matches(linux_box(2048)));
  EXPECT_FALSE(parsed.matches(linux_box(1024)));  // too little memory
  ClassAd windows = linux_box(8192);
  windows["OpSys"] = std::string("WINDOWS");
  EXPECT_FALSE(parsed.matches(windows));
}

TEST(ClassAdExpr, MultiPlatformRequirements) {
  GridJob job;
  job.requirements.platforms = {
      PlatformSpec{OsType::kLinux, Arch::kX86_64},
      PlatformSpec{OsType::kMacOS, Arch::kX86}};
  const AdExpression parsed =
      AdExpression::parse(condor_requirements_expression(job));
  EXPECT_TRUE(parsed.matches(linux_box(128)));
  ClassAd mac{{"OpSys", std::string("OSX")},
              {"Arch", std::string("INTEL")},
              {"Memory", 64.0}};
  EXPECT_TRUE(parsed.matches(mac));
  ClassAd ppc_mac = mac;
  ppc_mac["Arch"] = std::string("PPC");
  EXPECT_FALSE(parsed.matches(ppc_mac));
}

// ---------------------------------------------------------------------------
// Machine-level matchmaking in the pool

TEST(CondorMatchmaking, MemoryHungryJobWaitsForBigMachine) {
  sim::Simulation sim;
  CondorPool::Config config;
  config.machines = 30;
  config.machine_memory_gb = 2.0;
  config.memory_sigma = 0.6;  // heterogeneous desktops
  config.mean_idle_hours = 10000.0;
  config.mean_busy_hours = 0.001;
  config.seed = 5;
  CondorPool pool(sim, "condor", config);

  // Find the biggest machine to know what is satisfiable.
  double biggest = 0.0;
  for (std::size_t m = 0; m < 30; ++m) {
    biggest = std::max(biggest,
                       std::get<double>(pool.machine_ad(m).at("Memory")));
  }

  int completed = 0;
  pool.set_completion_callback(
      [&](GridJob&, const JobOutcome& outcome) {
        if (outcome.completed()) ++completed;
      });

  GridJob hungry;
  hungry.id = 1;
  hungry.true_reference_runtime = 600.0;
  hungry.requirements.min_memory_gb = biggest / 1024.0 * 0.9;  // near-top
  pool.submit(hungry);
  GridJob modest;
  modest.id = 2;
  modest.true_reference_runtime = 600.0;
  pool.submit(modest);
  sim.run(86400.0);
  // Both complete: the hungry job on a big machine, the modest one anywhere
  // (no head-of-line blocking).
  EXPECT_EQ(completed, 2);
}

TEST(CondorMatchmaking, UnsatisfiableJobDoesNotBlockQueue) {
  sim::Simulation sim;
  CondorPool::Config config;
  config.machines = 5;
  config.machine_memory_gb = 2.0;
  config.mean_idle_hours = 10000.0;
  config.mean_busy_hours = 0.001;
  config.seed = 7;
  CondorPool pool(sim, "condor", config);
  int completed = 0;
  pool.set_completion_callback(
      [&](GridJob&, const JobOutcome& outcome) {
        if (outcome.completed()) ++completed;
      });
  GridJob impossible;
  impossible.id = 1;
  impossible.true_reference_runtime = 60.0;
  impossible.requirements.min_memory_gb = 1024.0;  // 1 TB desktop, sure
  pool.submit(impossible);
  GridJob normal;
  normal.id = 2;
  normal.true_reference_runtime = 60.0;
  pool.submit(normal);
  sim.run(3600.0);
  EXPECT_EQ(completed, 1);  // the normal job ran past the stuck one
  EXPECT_EQ(normal.state, JobState::kCompleted);
  EXPECT_EQ(impossible.state, JobState::kQueued);
  // Cancelling the stuck job drains the queue.
  pool.cancel(1);
  EXPECT_EQ(impossible.state, JobState::kCancelled);
}

TEST(CondorMatchmaking, MachineAdAdvertisesPlatform) {
  sim::Simulation sim;
  CondorPool::Config config;
  config.machines = 1;
  config.platform = PlatformSpec{OsType::kWindows, Arch::kX86};
  CondorPool pool(sim, "condor", config);
  const ClassAd ad = pool.machine_ad(0);
  EXPECT_EQ(std::get<std::string>(ad.at("OpSys")), "WINDOWS");
  EXPECT_EQ(std::get<std::string>(ad.at("Arch")), "INTEL");
  EXPECT_GT(std::get<double>(ad.at("KFlops")), 0.0);
}

}  // namespace
}  // namespace lattice::grid
