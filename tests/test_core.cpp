// Tests for The Lattice Project core: the GARLI cost surface and
// featurization, the RF runtime estimator (accuracy + online update), speed
// calibration, the deadline policy, meta-scheduler filtering/ranking, the
// portal pipeline, and end-to-end LatticeSystem runs.
#include <gtest/gtest.h>

#include <cmath>

#include "core/cost_model.hpp"
#include "core/deadline.hpp"
#include "core/estimator.hpp"
#include "core/lattice.hpp"
#include "core/metascheduler.hpp"
#include "core/portal.hpp"
#include "core/speed.hpp"
#include "core/status.hpp"
#include "phylo/simulate.hpp"
#include "util/stats.hpp"

namespace lattice::core {
namespace {

// ---------------------------------------------------------------------------
// Cost model

TEST(CostModel, MonotoneInTaxaAndPatterns) {
  GarliCostModel model;
  GarliFeatures f;
  const double base = model.expected_runtime(f);
  GarliFeatures more_taxa = f;
  more_taxa.num_taxa *= 4;
  EXPECT_GT(model.expected_runtime(more_taxa), base);
  GarliFeatures more_patterns = f;
  more_patterns.num_patterns *= 4;
  EXPECT_NEAR(model.expected_runtime(more_patterns), 4.0 * base, base * 0.01);
}

TEST(CostModel, RateHetDominatesCategoryCount) {
  GarliCostModel model;
  GarliFeatures none;
  none.rate_het_model = 0;
  none.num_rate_categories = 1;
  GarliFeatures gamma4 = none;
  gamma4.rate_het_model = 1;
  gamma4.num_rate_categories = 4;
  GarliFeatures gamma8 = gamma4;
  gamma8.num_rate_categories = 8;

  const double t_none = model.expected_runtime(none);
  const double t_g4 = model.expected_runtime(gamma4);
  const double t_g8 = model.expected_runtime(gamma8);
  EXPECT_GT(t_g4 / t_none, 3.0);        // turning gamma on is huge
  EXPECT_LT(t_g8 / t_g4, 1.1);          // doubling categories is tiny
}

TEST(CostModel, DataTypeOrdering) {
  GarliCostModel model;
  GarliFeatures f;
  f.data_type = 0;
  const double nuc = model.expected_runtime(f);
  f.data_type = 1;
  f.subst_model_params = 0;
  const double aa = model.expected_runtime(f);
  f.data_type = 2;
  f.subst_model_params = 2;
  const double codon = model.expected_runtime(f);
  EXPECT_GT(aa, nuc);
  EXPECT_GT(codon, aa);
}

TEST(CostModel, StartingTreeSpeedsUp) {
  GarliCostModel model;
  GarliFeatures f;
  const double without = model.expected_runtime(f);
  f.has_starting_tree = true;
  EXPECT_LT(model.expected_runtime(f), without);
}

TEST(CostModel, NoiseIsUnbiasedMultiplicative) {
  GarliCostModel model;
  GarliFeatures f;
  util::Rng rng(1);
  util::RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    stat.add(model.sample_runtime(f, rng));
  }
  EXPECT_NEAR(stat.mean(), model.expected_runtime(f),
              model.expected_runtime(f) * 0.02);
}

TEST(CostModel, FeaturizationRoundTrip) {
  phylo::GarliJob job;
  job.model.data_type = phylo::DataType::kCodon;
  job.model.rate_het = phylo::RateHet::kGammaInvariant;
  job.model.n_rate_categories = 6;
  job.search_replicates = 7;
  job.genthresh = 500;
  job.starting_tree = "(a,b,(c,d));";
  const GarliFeatures f = features_from_job(job, 120, 900);
  EXPECT_DOUBLE_EQ(f.num_taxa, 120.0);
  EXPECT_DOUBLE_EQ(f.num_patterns, 900.0);
  EXPECT_EQ(f.data_type, 2);
  EXPECT_EQ(f.rate_het_model, 2);
  EXPECT_DOUBLE_EQ(f.num_rate_categories, 6.0);
  EXPECT_DOUBLE_EQ(f.subst_model_params, 2.0);
  EXPECT_DOUBLE_EQ(f.search_reps, 7.0);
  EXPECT_DOUBLE_EQ(f.genthresh, 500.0);
  EXPECT_TRUE(f.has_starting_tree);
  const auto vec = to_feature_vector(f);
  EXPECT_EQ(vec.size(), garli_feature_specs().size());
}

TEST(CostModel, CategoryFeatureIsRawConfigValue) {
  // numratecats is featurized as the raw config field even when rate
  // heterogeneity is off (the engine ignores it then) — the independence
  // behind Figure 2's near-zero importance for the category count.
  phylo::GarliJob job;
  job.model.rate_het = phylo::RateHet::kNone;
  job.model.n_rate_categories = 6;
  const GarliFeatures f = features_from_job(job, 10, 100);
  EXPECT_DOUBLE_EQ(f.num_rate_categories, 6.0);
}

TEST(CostModel, RealEngineConfirmsSurfaceShape) {
  // Anchor the synthetic surface against genuine GA executions: gamma rate
  // heterogeneity must cost real wall-clock time, and more taxa must cost
  // more than fewer.
  util::Rng rng(5);
  phylo::ModelSpec spec;
  const auto small = phylo::simulate_dataset(6, 300, spec, rng, 0.15);
  const auto large = phylo::simulate_dataset(12, 300, spec, rng, 0.15);

  phylo::GarliJob job;
  job.genthresh = 25;
  job.max_generations = 400;
  job.seed = 3;

  const double t_small = measure_reference_runtime(job, small.alignment);
  const double t_large = measure_reference_runtime(job, large.alignment);
  EXPECT_GT(t_large, t_small);

  phylo::GarliJob gamma_job = job;
  gamma_job.model.rate_het = phylo::RateHet::kGamma;
  gamma_job.model.n_rate_categories = 4;
  const double t_gamma =
      measure_reference_runtime(gamma_job, small.alignment);
  EXPECT_GT(t_gamma, t_small * 1.5);
}

TEST(CostModel, CorpusGeneration) {
  GarliCostModel model;
  util::Rng rng(2);
  const auto corpus = generate_corpus(200, model, rng);
  EXPECT_EQ(corpus.size(), 200u);
  for (const auto& example : corpus) {
    EXPECT_GT(example.runtime, 0.0);
    EXPECT_GE(example.features.num_taxa, 8.0);
  }
  const auto data = corpus_to_dataset(corpus, true);
  EXPECT_EQ(data.n_rows(), 200u);
  EXPECT_EQ(data.n_features(), 9u);
}

// ---------------------------------------------------------------------------
// Estimator

TEST(Estimator, PredictsHeldOutJobsWell) {
  GarliCostModel model;
  util::Rng rng(3);
  RuntimeEstimator::Config config;
  config.forest.n_trees = 150;
  RuntimeEstimator estimator(config);
  estimator.train(generate_corpus(300, model, rng));

  std::vector<double> observed;
  std::vector<double> predicted;
  for (int i = 0; i < 100; ++i) {
    const GarliFeatures f = random_features(rng);
    observed.push_back(std::log(model.expected_runtime(f)));
    predicted.push_back(std::log(*estimator.predict(f)));
  }
  EXPECT_GT(util::r_squared(observed, predicted), 0.85);
}

TEST(Estimator, VarianceExplainedHigh) {
  GarliCostModel model;
  util::Rng rng(4);
  RuntimeEstimator::Config config;
  config.forest.n_trees = 200;
  RuntimeEstimator estimator(config);
  estimator.train(generate_corpus(150, model, rng));
  // The paper reports ~93% on its 150-job corpus in raw-runtime space;
  // log-space OOB variance explained is the stricter measure (raw-space
  // R^2 is inflated by the handful of week-long jobs dominating SS_tot —
  // bench_rf_accuracy reports both).
  EXPECT_GT(estimator.variance_explained(), 0.75);
}

TEST(Estimator, UntrainedReturnsNullopt) {
  RuntimeEstimator estimator;
  EXPECT_FALSE(estimator.predict(GarliFeatures{}).has_value());
  EXPECT_DOUBLE_EQ(estimator.variance_explained(), 0.0);
}

TEST(Estimator, OnlineObservationsTriggerRetrain) {
  GarliCostModel model;
  util::Rng rng(5);
  RuntimeEstimator::Config config;
  config.forest.n_trees = 60;
  config.retrain_every = 10;
  RuntimeEstimator estimator(config);
  estimator.train(generate_corpus(50, model, rng));
  const std::size_t before = estimator.corpus_size();
  for (int i = 0; i < 10; ++i) {
    const GarliFeatures f = random_features(rng);
    estimator.observe(f, model.sample_runtime(f, rng));
  }
  EXPECT_EQ(estimator.corpus_size(), before + 10);
  // After the retrain the new observations influence predictions (model
  // is rebuilt without throwing, corpus grew).
  EXPECT_TRUE(estimator.predict(GarliFeatures{}).has_value());
}

TEST(Estimator, ImportanceRanksRateHetAndDataTypeHighest) {
  GarliCostModel model;
  util::Rng rng(6);
  RuntimeEstimator::Config config;
  config.forest.n_trees = 150;
  RuntimeEstimator estimator(config);
  estimator.train(generate_corpus(400, model, rng));
  util::Rng imp_rng(7);
  const auto importance = estimator.importance(imp_rng);
  ASSERT_EQ(importance.size(), 9u);
  double rate_het = 0.0;
  double categories = 0.0;
  for (const auto& entry : importance) {
    if (entry.feature == "rate_het_model") rate_het = entry.inc_mse_pct;
    if (entry.feature == "num_rate_categories") {
      categories = entry.inc_mse_pct;
    }
  }
  // Figure 2's headline ordering: the rate-het model matters enormously,
  // the category count barely at all.
  EXPECT_GT(rate_het, 10.0);
  EXPECT_GT(rate_het, 5.0 * std::max(categories, 0.5));
}

// ---------------------------------------------------------------------------
// Speed calibration

TEST(Speed, ComputesPaperFormula) {
  SpeedCalibrator calibrator(600.0);
  // Paper: "If the job runs in half the time ... speed 2.0 — in twice the
  // time, a speed of 0.5".
  calibrator.calibrate("fast", std::vector<double>{300.0});
  calibrator.calibrate("slow", std::vector<double>{1200.0});
  EXPECT_DOUBLE_EQ(*calibrator.speed("fast"), 2.0);
  EXPECT_DOUBLE_EQ(*calibrator.speed("slow"), 0.5);
}

TEST(Speed, AveragesMachineRuntimes) {
  SpeedCalibrator calibrator(100.0);
  calibrator.calibrate("pool", std::vector<double>{50.0, 150.0});
  EXPECT_DOUBLE_EQ(*calibrator.speed("pool"), 1.0);
}

TEST(Speed, ErrorsAndDefaults) {
  EXPECT_THROW(SpeedCalibrator(0.0), std::invalid_argument);
  SpeedCalibrator calibrator(100.0);
  EXPECT_THROW(calibrator.calibrate("x", std::vector<double>{}),
               std::invalid_argument);
  EXPECT_THROW(calibrator.calibrate("x", std::vector<double>{-1.0}),
               std::invalid_argument);
  EXPECT_FALSE(calibrator.speed("unknown").has_value());
  EXPECT_DOUBLE_EQ(calibrator.speed_or_default("unknown"), 1.0);
}

// ---------------------------------------------------------------------------
// Deadline policy

TEST(Deadline, ScalesWithEstimateAndClamps) {
  DeadlinePolicy policy;
  const double short_deadline = policy.deadline_seconds(60.0);
  EXPECT_DOUBLE_EQ(short_deadline, policy.min_deadline_seconds);
  const double medium = policy.deadline_seconds(8.0 * 3600.0);
  EXPECT_GT(medium, policy.min_deadline_seconds);
  EXPECT_LT(medium, policy.max_deadline_seconds);
  const double huge = policy.deadline_seconds(1e9);
  EXPECT_DOUBLE_EQ(huge, policy.max_deadline_seconds);
}

TEST(Deadline, MoreSlackMeansLaterDeadline) {
  DeadlinePolicy tight;
  tight.slack = 2.0;
  DeadlinePolicy loose;
  loose.slack = 8.0;
  const double estimate = 6.0 * 3600.0;
  EXPECT_LT(tight.deadline_seconds(estimate),
            loose.deadline_seconds(estimate));
}

// ---------------------------------------------------------------------------
// Meta-scheduler

struct SchedulerFixture {
  sim::Simulation sim;
  grid::MdsDirectory mds{sim, 300.0};
  SpeedCalibrator speeds{600.0};

  grid::ResourceInfo cluster(const std::string& name, std::size_t free,
                             std::size_t queued) {
    grid::ResourceInfo info;
    info.name = name;
    info.kind = grid::ResourceKind::kPbsCluster;
    info.total_slots = 64;
    info.free_slots = free;
    info.queued_jobs = queued;
    info.node_memory_gb = 16.0;
    info.platforms = {grid::PlatformSpec{}};
    info.mpi_capable = true;
    info.stable = true;
    return info;
  }

  grid::ResourceInfo pool(const std::string& name, std::size_t free) {
    grid::ResourceInfo info = cluster(name, free, 0);
    info.kind = grid::ResourceKind::kCondorPool;
    info.node_memory_gb = 2.0;
    info.mpi_capable = false;
    info.stable = false;
    return info;
  }
};

TEST(Scheduler, FiltersOfflineResources) {
  SchedulerFixture fx;
  fx.mds.report(fx.cluster("hpc", 10, 0));
  MetaScheduler scheduler(fx.mds, fx.speeds);
  grid::GridJob job;
  job.estimated_reference_runtime = 100.0;
  EXPECT_EQ(scheduler.choose(job).value_or(""), "hpc");
  // Let the report go stale.
  fx.sim.at(301.0, [] {});
  fx.sim.run();
  EXPECT_FALSE(scheduler.choose(job).has_value());
}

TEST(Scheduler, MatchmakingFilters) {
  SchedulerFixture fx;
  grid::ResourceInfo info = fx.cluster("hpc", 10, 0);
  grid::GridJob job;

  // Platform mismatch.
  job.requirements.platforms = {
      grid::PlatformSpec{grid::OsType::kWindows, grid::Arch::kX86}};
  EXPECT_FALSE(MetaScheduler::matches(job, info));
  job.requirements.platforms.clear();

  // Memory.
  job.requirements.min_memory_gb = 64.0;
  EXPECT_FALSE(MetaScheduler::matches(job, info));
  job.requirements.min_memory_gb = 1.0;

  // MPI.
  job.requirements.needs_mpi = true;
  info.mpi_capable = false;
  EXPECT_FALSE(MetaScheduler::matches(job, info));
  info.mpi_capable = true;
  EXPECT_TRUE(MetaScheduler::matches(job, info));

  // Software dependency.
  job.requirements.software = {"java"};
  EXPECT_FALSE(MetaScheduler::matches(job, info));
  info.software = {"java"};
  EXPECT_TRUE(MetaScheduler::matches(job, info));
}

TEST(Scheduler, StabilityRoutesLongJobsToClusters) {
  SchedulerFixture fx;
  fx.mds.report(fx.cluster("hpc", 1, 50));  // stable but loaded
  fx.mds.report(fx.pool("condor", 60));     // unstable and empty
  SchedulerPolicy policy;
  policy.mode = SchedulingMode::kEstimateAware;
  policy.stability_cutoff_hours = 10.0;
  MetaScheduler scheduler(fx.mds, fx.speeds, policy);

  grid::GridJob long_job;
  long_job.estimated_reference_runtime = 48.0 * 3600.0;
  EXPECT_EQ(scheduler.choose(long_job).value_or(""), "hpc");

  grid::GridJob short_job;
  short_job.estimated_reference_runtime = 600.0;
  EXPECT_EQ(scheduler.choose(short_job).value_or(""), "condor");
}

TEST(Scheduler, SpeedScalingChangesStabilityDecision) {
  SchedulerFixture fx;
  fx.mds.report(fx.cluster("hpc", 1, 50));
  fx.mds.report(fx.pool("condor", 60));
  fx.speeds.calibrate("condor", std::vector<double>{150.0});  // speed 4.0
  // Ranking reads speeds from the directory entry (what calibrate_speeds
  // publishes); mirror the calibration the way LatticeSystem does.
  fx.mds.set_speed("condor", fx.speeds.speed_or_default("condor"));
  SchedulerPolicy policy;
  policy.stability_cutoff_hours = 10.0;
  MetaScheduler scheduler(fx.mds, fx.speeds, policy);
  // 30h of reference work is only ~7.5h on the fast pool: now allowed.
  grid::GridJob job;
  job.estimated_reference_runtime = 30.0 * 3600.0;
  EXPECT_EQ(scheduler.choose(job).value_or(""), "condor");
}

TEST(Scheduler, LoadBalancePrefersEmptierResource) {
  SchedulerFixture fx;
  fx.mds.report(fx.cluster("busy", 0, 100));
  fx.mds.report(fx.cluster("empty", 64, 0));
  SchedulerPolicy policy;
  policy.mode = SchedulingMode::kLoadOnly;
  MetaScheduler scheduler(fx.mds, fx.speeds, policy);
  grid::GridJob job;
  EXPECT_EQ(scheduler.choose(job).value_or(""), "empty");
}

TEST(Scheduler, RoundRobinCycles) {
  SchedulerFixture fx;
  fx.mds.report(fx.cluster("a", 10, 0));
  fx.mds.report(fx.cluster("b", 10, 0));
  SchedulerPolicy policy;
  policy.mode = SchedulingMode::kRoundRobin;
  MetaScheduler scheduler(fx.mds, fx.speeds, policy);
  grid::GridJob job;
  const std::string first = scheduler.choose(job).value_or("");
  const std::string second = scheduler.choose(job).value_or("");
  EXPECT_NE(first, second);
  EXPECT_EQ(scheduler.choose(job).value_or(""), first);
}

TEST(Scheduler, OracleUsesTrueRuntime) {
  SchedulerFixture fx;
  fx.mds.report(fx.cluster("hpc", 1, 50));
  fx.mds.report(fx.pool("condor", 60));
  SchedulerPolicy policy;
  policy.mode = SchedulingMode::kOracle;
  MetaScheduler scheduler(fx.mds, fx.speeds, policy);
  grid::GridJob job;
  job.true_reference_runtime = 48.0 * 3600.0;
  job.estimated_reference_runtime = 60.0;  // wrong estimate is ignored
  EXPECT_EQ(scheduler.choose(job).value_or(""), "hpc");
}

// ---------------------------------------------------------------------------
// LatticeSystem end to end

LatticeConfig fast_config(SchedulingMode mode) {
  LatticeConfig config;
  config.scheduler.mode = mode;
  config.scheduler_period = 30.0;
  config.seed = 11;
  return config;
}

TEST(Lattice, CompletesWorkAcrossResourceMix) {
  LatticeSystem system(fast_config(SchedulingMode::kEstimateAware));
  grid::BatchQueueResource::Config cluster;
  cluster.nodes = 8;
  cluster.cores_per_node = 2;
  system.add_cluster("umd-hpc", cluster);
  grid::CondorPool::Config condor;
  condor.machines = 30;
  condor.seed = 5;
  system.add_condor_pool("umd-condor", condor);
  boinc::BoincPoolConfig boinc_config;
  boinc_config.hosts = 60;
  boinc_config.seed = 7;
  system.add_boinc_pool("lattice-boinc", boinc_config);
  system.calibrate_speeds();

  // Train the estimator so estimate-aware scheduling is live.
  GarliCostModel model;
  util::Rng rng(13);
  RuntimeEstimator::Config est_config;
  est_config.forest.n_trees = 60;
  est_config.retrain_every = 0;
  system.estimator() = RuntimeEstimator(est_config);
  system.estimator().train(generate_corpus(120, model, rng));

  for (int i = 0; i < 40; ++i) {
    GarliFeatures f = random_features(rng);
    f.num_taxa = std::min(f.num_taxa, 200.0);
    f.num_patterns = std::min(f.num_patterns, 1000.0);
    system.submit_garli_job(f);
  }
  system.run_until_drained(400.0 * 86400.0);
  EXPECT_EQ(system.metrics().completed + system.metrics().abandoned, 40u);
  EXPECT_GT(system.metrics().completed, 30u);
}

TEST(Lattice, JobsDeferredWithNoResources) {
  LatticeSystem system(fast_config(SchedulingMode::kEstimateAware));
  GarliFeatures f;
  system.submit_garli_job(f);
  system.run(3600.0);
  EXPECT_EQ(system.pending_jobs(), 1u);
  EXPECT_EQ(system.metrics().completed, 0u);
}

TEST(Lattice, SpeedCalibrationApproximatesTrueSpeeds) {
  LatticeSystem system(fast_config(SchedulingMode::kEstimateAware));
  grid::BatchQueueResource::Config fast;
  fast.node_speed = 2.0;
  system.add_cluster("fast", fast);
  grid::BatchQueueResource::Config slow;
  slow.node_speed = 0.5;
  system.add_cluster("slow", slow);
  system.calibrate_speeds(600.0, 0.02);
  EXPECT_NEAR(system.speeds().speed_or_default("fast"), 2.0, 0.15);
  EXPECT_NEAR(system.speeds().speed_or_default("slow"), 0.5, 0.05);
}

TEST(Lattice, FailedAttemptsAreRescheduled) {
  LatticeSystem system(fast_config(SchedulingMode::kEstimateAware));
  grid::CondorPool::Config condor;
  condor.machines = 6;
  condor.mean_idle_hours = 0.5;  // aggressive preemption
  condor.mean_busy_hours = 0.5;
  condor.seed = 3;
  system.add_condor_pool("volatile", condor);
  GarliFeatures f;
  system.submit_job_with_runtime(f, 2.0 * 3600.0);
  system.run_until_drained(365.0 * 86400.0);
  EXPECT_EQ(system.metrics().completed + system.metrics().abandoned, 1u);
  // Preemptions should have occurred and been recorded.
  EXPECT_GT(system.metrics().failed_attempts +
                system.metrics().completed,
            1u);
}

// ---------------------------------------------------------------------------
// Portal

struct PortalFixture {
  LatticeSystem system{fast_config(SchedulingMode::kEstimateAware)};
  Portal portal{system};

  PortalFixture() {
    grid::BatchQueueResource::Config cluster;
    cluster.nodes = 32;
    cluster.cores_per_node = 4;
    system.add_cluster("hpc", cluster);
    system.calibrate_speeds();
  }

  void train_estimator() {
    GarliCostModel model;
    util::Rng rng(21);
    RuntimeEstimator::Config config;
    config.forest.n_trees = 60;
    config.retrain_every = 0;
    system.estimator() = RuntimeEstimator(config);
    system.estimator().train(generate_corpus(150, model, rng));
  }
};

SubmissionRequest make_request(const std::string& email, UserClass user_class,
                               const phylo::GarliJob& job,
                               std::size_t replicates, std::size_t num_taxa,
                               std::size_t num_patterns,
                               const phylo::Alignment* alignment = nullptr) {
  SubmissionRequest request;
  request.user_id = email.empty() ? 0 : user_id_from_email(email);
  request.user_class = user_class;
  request.user_email = email;
  request.job = job;
  request.replicates = replicates;
  request.num_taxa = num_taxa;
  request.num_patterns = num_patterns;
  request.alignment = alignment;
  return request;
}

TEST(PortalTest, RejectsOversizedAndInvalid) {
  PortalFixture fx;
  phylo::GarliJob job;
  auto receipt = fx.portal.submit(
      make_request("user@example.org", UserClass::kGuest, job, 2001, 50, 500));
  EXPECT_FALSE(receipt.accepted);

  receipt = fx.portal.submit(
      make_request("", UserClass::kGuest, job, 10, 50, 500));
  EXPECT_FALSE(receipt.accepted);

  receipt = fx.portal.submit(
      make_request("user@example.org", UserClass::kGuest, job, 0, 50, 500));
  EXPECT_FALSE(receipt.accepted);

  phylo::GarliJob bad;
  bad.model.kappa = -3.0;
  receipt = fx.portal.submit(
      make_request("user@example.org", UserClass::kGuest, bad, 10, 50, 500));
  EXPECT_FALSE(receipt.accepted);
}

TEST(PortalTest, ValidatesAgainstAlignment) {
  PortalFixture fx;
  util::Rng rng(22);
  const auto dataset = phylo::simulate_dataset(6, 200, phylo::ModelSpec{},
                                               rng, 0.15);
  phylo::GarliJob job;
  job.model.data_type = phylo::DataType::kAminoAcid;  // mismatch
  const auto receipt = fx.portal.submit(
      make_request("user@example.org", UserClass::kRegistered, job, 5, 0, 0,
                   &dataset.alignment));
  EXPECT_FALSE(receipt.accepted);
  ASSERT_FALSE(receipt.problems.empty());
}

TEST(PortalTest, DeprecatedSubmitShimForwards) {
  // The pre-SubmissionRequest overload must keep working for one PR:
  // identity derived from the email, class from the registered flag.
  PortalFixture fx;
  phylo::GarliJob job;
  const auto receipt =
      fx.portal.submit("user@example.org", true, job, 4, 40, 300);
  ASSERT_TRUE(receipt.accepted);
  const BatchRecord* record = fx.portal.batch(receipt.batch_id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->user_id, user_id_from_email("user@example.org"));
  EXPECT_EQ(record->user_class, UserClass::kRegistered);
}

TEST(PortalTest, AcceptsAndTracksBatch) {
  PortalFixture fx;
  phylo::GarliJob job;
  job.genthresh = 200;
  const auto outcome = fx.portal.submit(
      make_request("user@example.org", UserClass::kRegistered, job, 25, 40,
                   300));
  ASSERT_TRUE(outcome.accepted);
  const BatchRecord* record = fx.portal.batch(outcome.batch_id);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->replicates, 25u);
  EXPECT_EQ(record->grid_jobs, outcome.grid_jobs);
  EXPECT_EQ(record->notifications.size(), 1u);
  EXPECT_EQ(record->notifications[0].kind, "submitted");

  fx.system.run_until_drained(400.0 * 86400.0);
  EXPECT_TRUE(record->done);
  EXPECT_EQ(record->completed_jobs, record->grid_jobs);
  EXPECT_EQ(record->result_manifest.size(), record->grid_jobs);
  EXPECT_EQ(record->notifications.back().kind, "completed");
}

TEST(PortalTest, ShortJobsAreBundled) {
  PortalFixture fx;
  fx.train_estimator();
  // The RF cannot predict below its training corpus's smallest jobs, so
  // use a bundling threshold covering the corpus's short tail.
  PortalConfig config;
  config.bundle_threshold_seconds = 2.0 * 3600.0;
  config.bundle_target_seconds = 8.0 * 3600.0;
  Portal portal(fx.system, config);
  phylo::GarliJob job;  // default small nucleotide job
  const auto outcome = portal.submit(
      make_request("user@example.org", UserClass::kGuest, job, 200, 10, 60));
  ASSERT_TRUE(outcome.accepted);
  // Tiny replicates (10 taxa x 60 patterns) should bundle aggressively.
  EXPECT_GT(outcome.bundle_size, 1u);
  EXPECT_LT(outcome.grid_jobs, 200u);
  EXPECT_TRUE(outcome.eta_seconds.has_value());
}

TEST(PortalTest, LongJobsAreNotBundled) {
  PortalFixture fx;
  fx.train_estimator();
  phylo::GarliJob job;
  job.model.rate_het = phylo::RateHet::kGamma;
  job.model.data_type = phylo::DataType::kCodon;
  job.model.n_rate_categories = 4;
  const auto outcome = fx.portal.submit(make_request(
      "user@example.org", UserClass::kGuest, job, 20, 800, 5000));
  ASSERT_TRUE(outcome.accepted);
  EXPECT_EQ(outcome.bundle_size, 1u);
  EXPECT_EQ(outcome.grid_jobs, 20u);
}

TEST(StatusReports, CoverResourcesJobsAndBatches) {
  PortalFixture fx;
  fx.train_estimator();
  phylo::GarliJob job;
  const auto outcome = fx.portal.submit(make_request(
      "user@example.org", UserClass::kRegistered, job, 5, 40, 300));
  ASSERT_TRUE(outcome.accepted);
  fx.system.run(3600.0);

  const std::string resources = resource_status_report(fx.system);
  EXPECT_NE(resources.find("hpc"), std::string::npos);
  EXPECT_NE(resources.find("stable"), std::string::npos);
  EXPECT_NE(resources.find("online"), std::string::npos);

  const std::string jobs = job_status_report(fx.system);
  EXPECT_NE(jobs.find("5 submitted"), std::string::npos);

  const std::string batches = batch_status_report(fx.portal);
  EXPECT_NE(batches.find("batch 1"), std::string::npos);
  EXPECT_NE(batches.find("user@example.org"), std::string::npos);

  fx.system.run_until_drained(200.0 * 86400.0);
  EXPECT_NE(batch_status_report(fx.portal).find("[COMPLETE]"),
            std::string::npos);
}

TEST(PortalTest, UntrainedEstimatorMeansNoEtaNoBundling) {
  PortalFixture fx;
  phylo::GarliJob job;
  const auto outcome = fx.portal.submit(
      make_request("user@example.org", UserClass::kGuest, job, 50, 10, 60));
  ASSERT_TRUE(outcome.accepted);
  EXPECT_EQ(outcome.bundle_size, 1u);
  EXPECT_FALSE(outcome.eta_seconds.has_value());
}

}  // namespace
}  // namespace lattice::core
