// Tests for distance methods (pairwise distances, neighbor joining) and
// the ASCII tree renderer.
#include <gtest/gtest.h>

#include "phylo/distance.hpp"
#include "phylo/render.hpp"
#include "phylo/simulate.hpp"
#include "util/rng.hpp"

namespace lattice::phylo {
namespace {

TEST(Distance, PDistanceHandComputed) {
  Alignment alignment(DataType::kNucleotide, 4);
  alignment.add_taxon("A", {0, 1, 2, 3});
  alignment.add_taxon("B", {0, 1, 2, 0});  // 1 of 4 differs
  alignment.add_taxon("C", {3, 2, 1, 0});  // all differ from A
  const auto d =
      distance_matrix(alignment, DistanceCorrection::kPDistance);
  EXPECT_DOUBLE_EQ(d[0 * 3 + 1], 0.25);
  EXPECT_DOUBLE_EQ(d[1 * 3 + 0], 0.25);
  EXPECT_DOUBLE_EQ(d[0 * 3 + 2], 1.0);
  EXPECT_DOUBLE_EQ(d[0 * 3 + 0], 0.0);
}

TEST(Distance, MissingSitesSkippedPairwise) {
  Alignment alignment(DataType::kNucleotide, 4);
  alignment.add_taxon("A", {0, 1, kMissing, 3});
  alignment.add_taxon("B", {0, 2, 2, kMissing});
  // Comparable sites: 0 and 1; one differs -> p = 0.5.
  const auto d =
      distance_matrix(alignment, DistanceCorrection::kPDistance);
  EXPECT_DOUBLE_EQ(d[1], 0.5);
}

TEST(Distance, JukesCantorSaturates) {
  Alignment alignment(DataType::kNucleotide, 4);
  alignment.add_taxon("A", {0, 0, 0, 0});
  alignment.add_taxon("B", {1, 1, 1, 1});  // p = 1 > 3/4: saturated
  const auto d = distance_matrix(alignment,
                                 DistanceCorrection::kJukesCantor, 5.0);
  EXPECT_DOUBLE_EQ(d[1], 5.0);
}

TEST(Distance, JukesCantorExceedsPDistance) {
  util::Rng rng(1);
  const auto dataset = simulate_dataset(6, 500, ModelSpec{}, rng, 0.15);
  const auto p =
      distance_matrix(dataset.alignment, DistanceCorrection::kPDistance);
  const auto jc =
      distance_matrix(dataset.alignment, DistanceCorrection::kJukesCantor);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_GE(jc[i], p[i]);  // the correction expands distances
  }
}

TEST(NeighborJoining, RecoversAdditiveTreeExactly) {
  // A 4-taxon additive matrix built from a known tree:
  //   ((A:1,B:2):1,(C:3,D:4));  with the internal edge of length 1.
  // d(A,B)=3, d(A,C)=5, d(A,D)=6, d(B,C)=6, d(B,D)=7, d(C,D)=7.
  const std::vector<double> d{0, 3, 5, 6,  //
                              3, 0, 6, 7,  //
                              5, 6, 0, 7,  //
                              6, 7, 7, 0};
  const Tree tree = neighbor_joining(d, 4);
  EXPECT_TRUE(tree.check_valid());
  std::vector<std::string> names{"t0", "t1", "t2", "t3"};
  const Tree truth = Tree::parse_newick(
      "((t0:1,t1:2):0.5,(t2:3,t3:4):0.5);", names);
  EXPECT_EQ(Tree::robinson_foulds(tree, truth), 0u);
  // Total tree length is preserved for an additive matrix (= 11).
  EXPECT_NEAR(tree.tree_length(), 11.0, 1e-9);
}

TEST(NeighborJoining, Validation) {
  EXPECT_THROW(neighbor_joining({0, 1, 1, 0}, 2), std::invalid_argument);
  EXPECT_THROW(neighbor_joining(std::vector<double>(8, 0.0), 3),
               std::invalid_argument);
  // Asymmetric.
  std::vector<double> bad{0, 1, 2, 9, 0, 3, 2, 3, 0};
  EXPECT_THROW(neighbor_joining(bad, 3), std::invalid_argument);
  // Non-zero diagonal.
  std::vector<double> diag{1, 1, 2, 1, 0, 3, 2, 3, 0};
  EXPECT_THROW(neighbor_joining(diag, 3), std::invalid_argument);
}

TEST(NeighborJoining, NearTruthOnSimulatedData) {
  util::Rng rng(2);
  const auto dataset = simulate_dataset(12, 2000, ModelSpec{}, rng, 0.08);
  const Tree nj = neighbor_joining_tree(dataset.alignment);
  EXPECT_TRUE(nj.check_valid());
  // Long clean alignment: NJ recovers most of the topology; random trees
  // average near the RF maximum of 2*(12-3) = 18.
  EXPECT_LE(Tree::robinson_foulds(nj, dataset.tree), 6u);
}

TEST(NeighborJoining, ThreeTaxaBaseCase) {
  const std::vector<double> d{0, 2, 3, 2, 0, 3, 3, 3, 0};
  const Tree tree = neighbor_joining(d, 3);
  EXPECT_TRUE(tree.check_valid());
  EXPECT_EQ(tree.n_leaves(), 3u);
  EXPECT_NEAR(tree.tree_length(), 4.0, 1e-9);  // (2+3+3)/2
}

TEST(Render, AsciiContainsAllTaxaAndStructure) {
  std::vector<std::string> names{"Homo", "Pan", "Gorilla", "Pongo"};
  const Tree tree =
      Tree::parse_newick("((Homo:0.1,Pan:0.1):0.05,(Gorilla:0.2,Pongo:0.3):0.05);", names);
  const std::string art = render_ascii(tree, names);
  for (const auto& name : names) {
    EXPECT_NE(art.find(name), std::string::npos) << name;
  }
  EXPECT_NE(art.find("|--"), std::string::npos);
  EXPECT_NE(art.find("`--"), std::string::npos);
}

TEST(Render, BranchLengthsAndLabels) {
  std::vector<std::string> names{"A", "B", "C", "D"};
  const Tree tree =
      Tree::parse_newick("((A:0.5,B:0.5):0.25,(C:0.125,D:0.125):0.25);",
                         names);
  RenderOptions options;
  options.show_branch_lengths = true;
  // Label the internal nodes with fake support values.
  for (std::size_t i = tree.n_leaves(); i < tree.n_nodes(); ++i) {
    if (static_cast<int>(i) != tree.root()) {
      options.node_labels[static_cast<int>(i)] = "97%";
    }
  }
  const std::string art = render_ascii(tree, names, options);
  EXPECT_NE(art.find("(0.5)"), std::string::npos);
  EXPECT_NE(art.find("97%"), std::string::npos);
}

}  // namespace
}  // namespace lattice::phylo
