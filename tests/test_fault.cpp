// Tests for lattice::fault: plan parsing, deterministic churn injection,
// corruption vs quorum validation, retry backoff bounds, unstable->stable
// demotion, and portal-visible graceful degradation under a total outage.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "boinc/server.hpp"
#include "core/lattice.hpp"
#include "core/portal.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/ini.hpp"

namespace lattice::fault {
namespace {

// ---------------------------------------------------------------------------
// Plan parsing

TEST(FaultPlan, InertByDefaultAndParsesEverySection) {
  EXPECT_FALSE(FaultPlan{}.active());

  const std::string text = R"(
[plan]
seed = 42

[churn]
on_scale = 0.5
off_scale = 2.0
lifetime_scale = 0.25
weibull_shape = 0.7

[hosts]
flaky_fraction = 0.2
compute_error_probability = 0.01
corruption_probability = 0.02
flaky_compute_error_probability = 0.1
flaky_corruption_probability = 0.3

[report_path]
drop_probability = 0.05
delay_probability = 0.1
delay_seconds = 900

[outage.umd-deepthought]
start = 3600
duration = 7200
period = 86400
heartbeat_only = true
)";
  const FaultPlan plan = fault_plan_from_ini(util::IniFile::parse(text));
  EXPECT_TRUE(plan.active());
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.churn.on_scale, 0.5);
  EXPECT_DOUBLE_EQ(plan.churn.weibull_shape, 0.7);
  EXPECT_DOUBLE_EQ(plan.flaky_host_fraction, 0.2);
  EXPECT_DOUBLE_EQ(plan.normal_hosts.compute_error_probability, 0.01);
  EXPECT_DOUBLE_EQ(plan.flaky_hosts.corruption_probability, 0.3);
  EXPECT_DOUBLE_EQ(plan.report_path.drop_probability, 0.05);
  ASSERT_EQ(plan.outages.size(), 1u);
  EXPECT_EQ(plan.outages[0].resource, "umd-deepthought");
  EXPECT_DOUBLE_EQ(plan.outages[0].start, 3600.0);
  EXPECT_TRUE(plan.outages[0].heartbeat_only);

  // Applying the plan rewrites a pool config; an inactive plan does not.
  boinc::BoincPoolConfig pool;
  const boinc::BoincPoolConfig before = pool;
  apply_fault_plan(FaultPlan{}, pool);
  EXPECT_DOUBLE_EQ(pool.mean_on_hours, before.mean_on_hours);
  EXPECT_DOUBLE_EQ(pool.host_error_probability,
                   before.host_error_probability);
  apply_fault_plan(plan, pool);
  EXPECT_DOUBLE_EQ(pool.mean_on_hours, before.mean_on_hours * 0.5);
  EXPECT_DOUBLE_EQ(pool.churn_weibull_shape, 0.7);
  EXPECT_DOUBLE_EQ(pool.flaky_host_fraction, 0.2);
  EXPECT_DOUBLE_EQ(pool.host_error_probability, 0.02);
  EXPECT_DOUBLE_EQ(pool.flaky_error_probability, 0.3);
  EXPECT_DOUBLE_EQ(pool.report_drop_probability, 0.05);
}

TEST(FaultPlan, RejectsMalformedOutages) {
  EXPECT_THROW(fault_plan_from_ini(
                   util::IniFile::parse("[outage.x]\nstart = 10\n")),
               std::runtime_error);
  EXPECT_THROW(
      fault_plan_from_ini(util::IniFile::parse(
          "[outage.x]\nstart = 10\nduration = 100\nperiod = 50\n")),
      std::runtime_error);
}

// ---------------------------------------------------------------------------
// Seeded churn determinism

struct RunStats {
  std::uint64_t completed = 0;
  std::uint64_t abandoned = 0;
  std::uint64_t failed_attempts = 0;
  double wasted_cpu = 0.0;
  double useful_cpu = 0.0;
  double turnaround = 0.0;
  double drained_at = 0.0;
  std::uint64_t reissued = 0;
  std::uint64_t timeouts = 0;
};

RunStats run_volunteer_scenario(const FaultPlan& plan, std::size_t jobs) {
  core::LatticeConfig config;
  config.seed = 7;
  config.retry.backoff_base_seconds = 15.0;
  core::LatticeSystem system(config);
  boinc::BoincPoolConfig pool;
  pool.hosts = 60;
  pool.mean_speed = 0.9;
  pool.speed_sigma = 0.4;
  pool.seed = 5;
  apply_fault_plan(plan, pool);
  auto& server = system.add_boinc_pool("boinc", pool);
  system.calibrate_speeds();
  FaultInjector injector(system, plan);
  injector.arm();
  for (std::size_t i = 0; i < jobs; ++i) {
    system.submit_job_with_runtime(core::GarliFeatures{}, 3600.0);
  }
  system.run_until_drained(60.0 * 86400.0);
  const auto& m = system.metrics();
  return RunStats{m.completed,
                  m.abandoned,
                  m.failed_attempts,
                  m.wasted_cpu_seconds,
                  m.useful_cpu_seconds,
                  m.total_turnaround_seconds,
                  system.simulation().now(),
                  server.reissued_results(),
                  server.timed_out_results()};
}

TEST(FaultInjection, SeededChurnIsBitDeterministic) {
  FaultPlan plan;
  plan.churn.on_scale = 0.4;
  plan.churn.off_scale = 0.8;
  plan.churn.weibull_shape = 0.7;
  plan.seed = 11;

  const RunStats a = run_volunteer_scenario(plan, 12);
  const RunStats b = run_volunteer_scenario(plan, 12);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.abandoned, b.abandoned);
  EXPECT_EQ(a.failed_attempts, b.failed_attempts);
  EXPECT_EQ(a.wasted_cpu, b.wasted_cpu);       // bit-identical, not near
  EXPECT_EQ(a.useful_cpu, b.useful_cpu);
  EXPECT_EQ(a.turnaround, b.turnaround);
  EXPECT_EQ(a.drained_at, b.drained_at);
  EXPECT_EQ(a.reissued, b.reissued);
  EXPECT_EQ(a.timeouts, b.timeouts);
  EXPECT_EQ(a.completed, 12u);  // accelerated churn still drains
}

TEST(FaultInjection, InactivePlanMatchesBaselineBitForBit) {
  const RunStats baseline = run_volunteer_scenario(FaultPlan{}, 12);
  FaultPlan inert;
  inert.seed = 999;  // plan-level seed alone must not perturb the stream
  const RunStats with_plan = run_volunteer_scenario(inert, 12);
  EXPECT_EQ(baseline.completed, with_plan.completed);
  EXPECT_EQ(baseline.failed_attempts, with_plan.failed_attempts);
  EXPECT_EQ(baseline.wasted_cpu, with_plan.wasted_cpu);
  EXPECT_EQ(baseline.useful_cpu, with_plan.useful_cpu);
  EXPECT_EQ(baseline.turnaround, with_plan.turnaround);
  EXPECT_EQ(baseline.drained_at, with_plan.drained_at);
}

// ---------------------------------------------------------------------------
// Corruption vs quorum

TEST(FaultInjection, QuorumStopsInjectedCorruption) {
  core::LatticeConfig config;
  config.seed = 3;
  core::LatticeSystem system(config);
  boinc::BoincPoolConfig pool;
  pool.hosts = 80;
  pool.min_quorum = 2;  // the recovery mechanism under test
  pool.target_nresults = 2;
  pool.seed = 17;
  FaultPlan plan;
  plan.flaky_host_fraction = 0.4;
  plan.normal_hosts.corruption_probability = 0.02;
  plan.flaky_hosts.corruption_probability = 0.5;
  apply_fault_plan(plan, pool);
  auto& server = system.add_boinc_pool("boinc", pool);
  system.calibrate_speeds();

  constexpr std::size_t kJobs = 15;
  for (std::size_t i = 0; i < kJobs; ++i) {
    system.submit_job_with_runtime(core::GarliFeatures{}, 3600.0);
  }
  system.run_until_drained(90.0 * 86400.0);

  // Corrupted returns carry per-result fingerprints, so they can never
  // agree with each other: validation reissues until two clean results
  // match, and no corrupted output ever becomes canonical.
  EXPECT_EQ(system.metrics().completed, kJobs);
  EXPECT_EQ(server.corrupted_validations(), 0u);
  EXPECT_GT(server.reissued_results(), 0u);  // corruption did fire
}

// ---------------------------------------------------------------------------
// Retry backoff bounds

TEST(RetryBackoff, GrowsDoublesAndCaps) {
  core::RetryPolicy policy;
  policy.backoff_base_seconds = 10.0;
  policy.backoff_cap_seconds = 100.0;
  policy.backoff_jitter = 0.0;
  EXPECT_DOUBLE_EQ(core::retry_backoff_seconds(policy, 1, 0.5), 10.0);
  EXPECT_DOUBLE_EQ(core::retry_backoff_seconds(policy, 2, 0.5), 20.0);
  EXPECT_DOUBLE_EQ(core::retry_backoff_seconds(policy, 3, 0.5), 40.0);
  EXPECT_DOUBLE_EQ(core::retry_backoff_seconds(policy, 4, 0.5), 80.0);
  EXPECT_DOUBLE_EQ(core::retry_backoff_seconds(policy, 5, 0.5), 100.0);
  EXPECT_DOUBLE_EQ(core::retry_backoff_seconds(policy, 50, 0.5), 100.0);
}

TEST(RetryBackoff, JitterStaysInsideTheBand) {
  core::RetryPolicy policy;
  policy.backoff_base_seconds = 60.0;
  policy.backoff_cap_seconds = 3600.0;
  policy.backoff_jitter = 0.25;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const double mid = core::retry_backoff_seconds(
        {60.0, 3600.0, 0.0, 0}, attempt, 0.5);
    for (const double draw : {0.0, 0.25, 0.5, 0.75, 0.999}) {
      const double delay =
          core::retry_backoff_seconds(policy, attempt, draw);
      EXPECT_GE(delay, mid * 0.75);
      EXPECT_LE(delay, mid * 1.25);
    }
  }
  // Monotone in the attempt count for a fixed draw.
  double previous = 0.0;
  for (int attempt = 1; attempt <= 10; ++attempt) {
    const double delay = core::retry_backoff_seconds(policy, attempt, 0.25);
    EXPECT_GE(delay, previous);
    previous = delay;
  }
}

// ---------------------------------------------------------------------------
// Unstable -> stable demotion

TEST(FaultInjection, RepeatedPreemptionDemotesToStableResources) {
  core::LatticeConfig config;
  config.seed = 21;
  config.retry.backoff_base_seconds = 10.0;
  config.retry.demote_after_failures = 2;
  core::LatticeSystem system(config);
  obs::MetricsRegistry metrics;
  system.enable_observability(metrics, obs::Tracer::null());

  grid::BatchQueueResource::Config cluster;
  cluster.nodes = 4;
  cluster.cores_per_node = 2;
  cluster.node_speed = 0.8;
  system.add_cluster("steady", cluster);
  grid::CondorPool::Config condor;
  condor.machines = 24;
  condor.mean_speed = 2.5;       // fast enough to be ranked first...
  condor.mean_idle_hours = 0.2;  // ...but owners return almost at once
  condor.mean_busy_hours = 12.0;
  system.add_condor_pool("flaky", condor);
  system.calibrate_speeds();

  constexpr std::size_t kJobs = 10;
  for (std::size_t i = 0; i < kJobs; ++i) {
    system.submit_job_with_runtime(core::GarliFeatures{}, 2.0 * 3600.0);
  }
  system.run_until_drained(60.0 * 86400.0);

  EXPECT_EQ(system.metrics().completed, kJobs);
  EXPECT_GT(metrics.counter_total("sched.demote_unstable_stable"), 0u);
  EXPECT_GT(metrics.counter_total("sched.retry_scheduled"), 0u);
  std::size_t demoted = 0;
  system.for_each_job([&](const grid::GridJob& job) {
    if (job.require_stable) ++demoted;
  });
  EXPECT_GT(demoted, 0u);
}

// ---------------------------------------------------------------------------
// Total outage: portal-visible graceful degradation, then recovery

TEST(FaultInjection, PortalDegradesDuringTotalOutageThenRecovers) {
  core::LatticeConfig config;
  config.seed = 13;
  core::LatticeSystem system(config);
  grid::BatchQueueResource::Config cluster;
  cluster.nodes = 8;
  cluster.cores_per_node = 4;
  system.add_cluster("only-cluster", cluster);
  system.calibrate_speeds();

  FaultPlan plan;
  plan.outages.push_back(
      ResourceOutage{"only-cluster", 0.0, 6.0 * 3600.0, 0.0, false});
  FaultInjector injector(system, plan);
  injector.arm();

  core::Portal portal(system);
  core::SubmissionRequest request;
  request.user_id = core::user_id_from_email("researcher@example.org");
  request.user_class = core::UserClass::kRegistered;
  request.user_email = "researcher@example.org";
  request.replicates = 6;
  request.num_taxa = 60;
  request.num_patterns = 300;
  const auto accepted = portal.submit(request);
  ASSERT_TRUE(accepted.accepted);
  ASSERT_GT(accepted.grid_jobs, 0u);

  // Mid-outage: the whole grid is dark, so every member job is held
  // pending at the portal rather than failed — degraded, not lost.
  system.run(3.0 * 3600.0);
  const auto mid = portal.progress(accepted.batch_id);
  EXPECT_EQ(mid.completed_jobs, 0u);
  EXPECT_EQ(mid.failed_jobs, 0u);
  EXPECT_EQ(mid.pending_jobs, accepted.grid_jobs);
  EXPECT_TRUE(mid.degraded);
  EXPECT_EQ(injector.outages_begun(), 1u);

  // After the window closes the resource re-announces itself and the held
  // jobs drain normally.
  system.run_until_drained(30.0 * 86400.0);
  const auto after = portal.progress(accepted.batch_id);
  EXPECT_EQ(after.completed_jobs, accepted.grid_jobs);
  EXPECT_EQ(after.pending_jobs, 0u);
  EXPECT_FALSE(after.degraded);
  EXPECT_EQ(system.metrics().completed, accepted.grid_jobs);
}

// Unknown resources in a plan are a configuration error, caught at arm().
TEST(FaultInjection, ArmRejectsUnknownResources) {
  core::LatticeSystem system;
  FaultPlan plan;
  plan.outages.push_back(ResourceOutage{"no-such-grid", 10.0, 60.0});
  FaultInjector injector(system, plan);
  EXPECT_THROW(injector.arm(), std::runtime_error);
}

}  // namespace
}  // namespace lattice::fault
