// Tests for the service-grid substrate: platforms, RSL parsing, batch
// queue and Condor pool LRM behaviour, MDS TTL/offline semantics, and
// scheduler-adapter translation.
#include <gtest/gtest.h>

#include "grid/adapter.hpp"
#include "grid/job.hpp"
#include "grid/mds.hpp"
#include "grid/resource.hpp"
#include "grid/rsl.hpp"
#include "sim/simulation.hpp"

namespace lattice::grid {
namespace {

GridJob make_job(std::uint64_t id, double runtime) {
  GridJob job;
  job.id = id;
  job.true_reference_runtime = runtime;
  return job;
}

TEST(Platform, NameRoundTrip) {
  for (OsType os : {OsType::kLinux, OsType::kWindows, OsType::kMacOS}) {
    for (Arch arch : {Arch::kX86, Arch::kX86_64, Arch::kPowerPC}) {
      const PlatformSpec spec{os, arch};
      const auto parsed = parse_platform(platform_name(spec));
      ASSERT_TRUE(parsed.has_value());
      EXPECT_EQ(*parsed, spec);
    }
  }
}

TEST(Platform, ParseRejectsGarbage) {
  EXPECT_FALSE(parse_platform("plan9-mips").has_value());
  EXPECT_FALSE(parse_platform("linux").has_value());
  EXPECT_FALSE(parse_platform("").has_value());
}

TEST(Rsl, ParsesFullDocument) {
  const RslDocument doc = parse_rsl(
      "&(executable=\"garli\")(platform=linux-x86_64)(platform=macos-x86)"
      "(memory>=2.5)(mpi=yes)(software=java)(runtime_estimate=3600)");
  EXPECT_EQ(doc.executable, "garli");
  ASSERT_EQ(doc.requirements.platforms.size(), 2u);
  EXPECT_DOUBLE_EQ(doc.requirements.min_memory_gb, 2.5);
  EXPECT_TRUE(doc.requirements.needs_mpi);
  ASSERT_EQ(doc.requirements.software.size(), 1u);
  EXPECT_EQ(doc.requirements.software[0], "java");
  EXPECT_DOUBLE_EQ(doc.runtime_estimate, 3600.0);
}

TEST(Rsl, WhitespaceTolerant) {
  const RslDocument doc =
      parse_rsl("  &  ( executable = garli )\n  ( memory >= 1 ) ");
  EXPECT_EQ(doc.executable, "garli");
  EXPECT_DOUBLE_EQ(doc.requirements.min_memory_gb, 1.0);
}

TEST(Rsl, Errors) {
  EXPECT_THROW(parse_rsl("(executable=garli)"), std::runtime_error);
  EXPECT_THROW(parse_rsl("&(bogus=1)"), std::runtime_error);
  EXPECT_THROW(parse_rsl("&(memory=2)"), std::runtime_error);
  EXPECT_THROW(parse_rsl("&(platform=plan9-mips)"), std::runtime_error);
  EXPECT_THROW(parse_rsl("&(executable=garli"), std::runtime_error);
  EXPECT_THROW(parse_rsl("&(memory>=abc)"), std::runtime_error);
}

TEST(Rsl, GenerateRoundTrip) {
  GridJob job = make_job(7, 100.0);
  job.requirements.platforms = {PlatformSpec{OsType::kLinux, Arch::kX86_64}};
  job.requirements.min_memory_gb = 4.0;
  job.requirements.needs_mpi = true;
  job.requirements.software = {"java"};
  job.estimated_reference_runtime = 1234.5;
  const RslDocument doc = parse_rsl(to_rsl(job));
  EXPECT_EQ(doc.executable, "garli");
  EXPECT_EQ(doc.requirements.platforms.size(), 1u);
  EXPECT_DOUBLE_EQ(doc.requirements.min_memory_gb, 4.0);
  EXPECT_TRUE(doc.requirements.needs_mpi);
  EXPECT_NEAR(doc.runtime_estimate, 1234.5, 0.01);
}

// ---------------------------------------------------------------------------
// BatchQueueResource

TEST(BatchQueue, RunsJobsToCompletion) {
  sim::Simulation sim;
  BatchQueueResource::Config config;
  config.nodes = 1;
  config.cores_per_node = 2;
  config.node_speed = 2.0;
  config.job_overhead_seconds = 0.0;
  BatchQueueResource cluster(sim, "hpc", config);

  int completed = 0;
  cluster.set_completion_callback(
      [&](GridJob& job, const JobOutcome& outcome) {
        EXPECT_TRUE(outcome.completed());
        EXPECT_EQ(job.state, JobState::kCompleted);
        ++completed;
      });

  auto a = make_job(1, 100.0);
  auto b = make_job(2, 200.0);
  cluster.submit(a);
  cluster.submit(b);
  sim.run();
  EXPECT_EQ(completed, 2);
  // Speed 2.0: the 100s job takes 50s of wall time.
  EXPECT_DOUBLE_EQ(a.finish_time, 50.0);
  EXPECT_DOUBLE_EQ(b.finish_time, 100.0);
}

TEST(BatchQueue, QueueWaitsForFreeSlot) {
  sim::Simulation sim;
  BatchQueueResource::Config config;
  config.nodes = 1;
  config.cores_per_node = 1;
  config.node_speed = 1.0;
  config.job_overhead_seconds = 0.0;
  BatchQueueResource cluster(sim, "hpc", config);
  cluster.set_completion_callback([](GridJob&, const JobOutcome&) {});

  auto a = make_job(1, 100.0);
  auto b = make_job(2, 50.0);
  cluster.submit(a);
  cluster.submit(b);
  EXPECT_EQ(cluster.info().free_slots, 0u);
  EXPECT_EQ(cluster.info().queued_jobs, 1u);
  sim.run();
  EXPECT_DOUBLE_EQ(a.finish_time, 100.0);
  EXPECT_DOUBLE_EQ(b.finish_time, 150.0);  // FIFO behind a
}

TEST(BatchQueue, DataStagingAddsTransferTime) {
  sim::Simulation sim;
  BatchQueueResource::Config config;
  config.nodes = 1;
  config.cores_per_node = 1;
  config.node_speed = 1.0;
  config.job_overhead_seconds = 10.0;
  config.stage_mb_per_second = 5.0;
  BatchQueueResource cluster(sim, "hpc", config);
  cluster.set_completion_callback([](GridJob&, const JobOutcome&) {});
  auto job = make_job(1, 100.0);
  job.input_mb = 40.0;   // 8 s at 5 MB/s
  job.output_mb = 10.0;  // 2 s
  cluster.submit(job);
  sim.run();
  EXPECT_DOUBLE_EQ(job.finish_time, 100.0 + 10.0 + 8.0 + 2.0);
}

TEST(BatchQueue, WalltimeKillsLongJobs) {
  sim::Simulation sim;
  BatchQueueResource::Config config;
  config.nodes = 1;
  config.cores_per_node = 1;
  config.max_walltime = 60.0;
  BatchQueueResource cluster(sim, "hpc", config);

  bool failed = false;
  cluster.set_completion_callback(
      [&](GridJob& job, const JobOutcome& outcome) {
        failed = !outcome.completed() && outcome.reason == "walltime";
        EXPECT_EQ(job.state, JobState::kFailed);
      });
  auto job = make_job(1, 1000.0);
  cluster.submit(job);
  sim.run();
  EXPECT_TRUE(failed);
  EXPECT_DOUBLE_EQ(job.wasted_cpu_seconds, 60.0);
}

TEST(BatchQueue, CancelQueuedAndRunning) {
  sim::Simulation sim;
  BatchQueueResource::Config config;
  config.nodes = 1;
  config.cores_per_node = 1;
  BatchQueueResource cluster(sim, "hpc", config);
  std::vector<std::string> reasons;
  cluster.set_completion_callback(
      [&](GridJob&, const JobOutcome& outcome) {
        reasons.push_back(outcome.reason);
      });

  auto a = make_job(1, 100.0);
  auto b = make_job(2, 100.0);
  cluster.submit(a);
  cluster.submit(b);
  cluster.cancel(2);  // queued
  EXPECT_EQ(b.state, JobState::kCancelled);
  sim.after(10.0, [&] { cluster.cancel(1); });  // running
  sim.run();
  EXPECT_EQ(a.state, JobState::kCancelled);
  ASSERT_EQ(reasons.size(), 2u);
  EXPECT_EQ(reasons[0], "cancelled");
  EXPECT_EQ(reasons[1], "cancelled");
  EXPECT_DOUBLE_EQ(a.wasted_cpu_seconds, 10.0);
}

TEST(BatchQueue, InfoReflectsConfig) {
  sim::Simulation sim;
  BatchQueueResource::Config config;
  config.nodes = 4;
  config.cores_per_node = 8;
  config.node_memory_gb = 64.0;
  config.mpi_capable = true;
  config.kind = ResourceKind::kSgeCluster;
  config.software = {"java"};
  BatchQueueResource cluster(sim, "sge1", config);
  const ResourceInfo info = cluster.info();
  EXPECT_EQ(info.total_slots, 32u);
  EXPECT_EQ(info.free_slots, 32u);
  EXPECT_EQ(info.kind, ResourceKind::kSgeCluster);
  EXPECT_TRUE(info.stable);
  EXPECT_TRUE(info.mpi_capable);
  EXPECT_DOUBLE_EQ(info.node_memory_gb, 64.0);
}

// ---------------------------------------------------------------------------
// CondorPool

TEST(Condor, CompletesShortJobs) {
  sim::Simulation sim;
  CondorPool::Config config;
  config.machines = 10;
  config.mean_idle_hours = 1000.0;  // owners effectively never return
  config.mean_busy_hours = 0.001;
  config.seed = 3;
  CondorPool pool(sim, "condor", config);
  int completed = 0;
  pool.set_completion_callback(
      [&](GridJob&, const JobOutcome& outcome) {
        if (outcome.completed()) ++completed;
      });
  std::vector<GridJob> jobs;
  jobs.reserve(10);
  for (int i = 0; i < 10; ++i) {
    jobs.push_back(make_job(static_cast<std::uint64_t>(i + 1), 600.0));
  }
  for (auto& job : jobs) pool.submit(job);
  sim.run(72.0 * 3600.0);
  EXPECT_EQ(completed, 10);
}

TEST(Condor, PreemptsWhenOwnerReturns) {
  sim::Simulation sim;
  CondorPool::Config config;
  config.machines = 4;
  config.mean_idle_hours = 0.5;  // owners come back quickly
  config.mean_busy_hours = 0.5;
  config.seed = 11;
  CondorPool pool(sim, "condor", config);
  int preemptions = 0;
  int completions = 0;
  pool.set_completion_callback(
      [&](GridJob& job, const JobOutcome& outcome) {
        if (outcome.completed()) {
          ++completions;
        } else if (outcome.reason == "preempted") {
          ++preemptions;
          EXPECT_GT(job.wasted_cpu_seconds, 0.0);
          // Requeue to keep pressure on the pool.
          if (job.attempts < 50) pool.submit(job);
        }
      });
  // Jobs of ~2h against ~30min idle windows: preemption is near certain.
  std::vector<GridJob> jobs;
  jobs.reserve(4);
  for (int i = 0; i < 4; ++i) {
    jobs.push_back(make_job(static_cast<std::uint64_t>(i + 1), 7200.0));
  }
  for (auto& job : jobs) pool.submit(job);
  sim.run(400.0 * 3600.0);
  EXPECT_GT(preemptions, 0);
}

TEST(Condor, InfoCountsIdleMachines) {
  sim::Simulation sim;
  CondorPool::Config config;
  config.machines = 20;
  config.seed = 5;
  CondorPool pool(sim, "condor", config);
  const ResourceInfo info = pool.info();
  EXPECT_EQ(info.total_slots, 20u);
  EXPECT_LE(info.free_slots, 20u);
  EXPECT_FALSE(info.stable);
  EXPECT_FALSE(info.mpi_capable);
}

TEST(Condor, MachineSpeedsAreHeterogeneous) {
  sim::Simulation sim;
  CondorPool::Config config;
  config.machines = 100;
  config.mean_speed = 1.0;
  config.speed_sigma = 0.4;
  config.seed = 7;
  CondorPool pool(sim, "condor", config);
  const auto speeds = pool.machine_speeds();
  double lo = speeds[0];
  double hi = speeds[0];
  for (double s : speeds) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_LT(lo, 0.8);
  EXPECT_GT(hi, 1.2);
}

// ---------------------------------------------------------------------------
// MDS

TEST(Mds, ReportsExpireAfterTtl) {
  sim::Simulation sim;
  MdsDirectory mds(sim, 300.0);
  ResourceInfo info;
  info.name = "hpc";
  mds.report(info);
  EXPECT_TRUE(mds.is_online("hpc"));
  EXPECT_EQ(mds.online().size(), 1u);
  sim.at(301.0, [] {});
  sim.run();
  EXPECT_FALSE(mds.is_online("hpc"));
  EXPECT_TRUE(mds.online().empty());
  EXPECT_EQ(mds.all().size(), 1u);  // stale entry still visible to monitors
}

TEST(Mds, ProviderKeepsResourceOnline) {
  sim::Simulation sim;
  MdsDirectory mds(sim, 300.0);
  BatchQueueResource::Config config;
  BatchQueueResource cluster(sim, "hpc", config);
  mds.attach_provider(cluster, 120.0);
  sim.run(3600.0);
  EXPECT_TRUE(mds.is_online("hpc"));
}

TEST(Mds, SpeedAnnotation) {
  sim::Simulation sim;
  MdsDirectory mds(sim, 300.0);
  ResourceInfo info;
  info.name = "hpc";
  mds.report(info);
  mds.set_speed("hpc", 2.5);
  const auto entry = mds.find("hpc");
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(entry->speed, 2.5);
}

TEST(Mds, UnknownResourceQueries) {
  sim::Simulation sim;
  MdsDirectory mds(sim);
  EXPECT_FALSE(mds.find("nope").has_value());
  EXPECT_FALSE(mds.is_online("nope"));
}

// ---------------------------------------------------------------------------
// Adapters

TEST(Adapters, CondorSubmitFile) {
  sim::Simulation sim;
  CondorPool::Config config;
  CondorPool pool(sim, "condor", config);
  CondorAdapter adapter(pool);
  GridJob job = make_job(1, 100.0);
  job.requirements.platforms = {PlatformSpec{OsType::kLinux, Arch::kX86_64}};
  job.requirements.min_memory_gb = 2.0;
  const std::string submit = adapter.translate(job);
  EXPECT_NE(submit.find("universe = vanilla"), std::string::npos);
  EXPECT_NE(submit.find("OpSys == \"LINUX\""), std::string::npos);
  EXPECT_NE(submit.find("Arch == \"X86_64\""), std::string::npos);
  EXPECT_NE(submit.find("request_memory = 2048MB"), std::string::npos);
  EXPECT_NE(submit.find("queue 1"), std::string::npos);
}

TEST(Adapters, PbsScript) {
  sim::Simulation sim;
  BatchQueueResource::Config config;
  BatchQueueResource cluster(sim, "pbs", config);
  PbsAdapter adapter(cluster);
  GridJob job = make_job(3, 100.0);
  job.estimated_reference_runtime = 7200.0;
  const std::string script = adapter.translate(job);
  EXPECT_NE(script.find("#PBS -N garli-3"), std::string::npos);
  EXPECT_NE(script.find("walltime="), std::string::npos);
}

TEST(Adapters, SgeScript) {
  sim::Simulation sim;
  BatchQueueResource::Config config;
  config.kind = ResourceKind::kSgeCluster;
  BatchQueueResource cluster(sim, "sge", config);
  SgeAdapter adapter(cluster);
  GridJob job = make_job(4, 100.0);
  job.requirements.needs_mpi = true;
  const std::string script = adapter.translate(job);
  EXPECT_NE(script.find("#$ -N garli-4"), std::string::npos);
  EXPECT_NE(script.find("-pe mpi"), std::string::npos);
}

TEST(Adapters, FactoryMatchesKind) {
  sim::Simulation sim;
  BatchQueueResource::Config config;
  BatchQueueResource cluster(sim, "hpc", config);
  auto pbs = make_adapter(cluster, ResourceKind::kPbsCluster);
  EXPECT_NE(dynamic_cast<PbsAdapter*>(pbs.get()), nullptr);
  auto sge = make_adapter(cluster, ResourceKind::kSgeCluster);
  EXPECT_NE(dynamic_cast<SgeAdapter*>(sge.get()), nullptr);
  auto condor = make_adapter(cluster, ResourceKind::kCondorPool);
  EXPECT_NE(dynamic_cast<CondorAdapter*>(condor.get()), nullptr);
  EXPECT_THROW(make_adapter(cluster, ResourceKind::kBoincPool),
               std::invalid_argument);
}

}  // namespace
}  // namespace lattice::grid
