// Cross-module integration tests: the full portal -> meta-scheduler ->
// resources pipeline, form-driven submission through the app description,
// cancellation paths, online estimator improvement inside a running grid,
// and the BOINC deadline integration.
#include <gtest/gtest.h>

#include <cmath>

#include "core/appspec.hpp"
#include "core/cost_model.hpp"
#include "core/lattice.hpp"
#include "core/portal.hpp"
#include "phylo/garli.hpp"
#include "phylo/simulate.hpp"
#include "util/stats.hpp"

namespace lattice::core {
namespace {

LatticeConfig quick_config() {
  LatticeConfig config;
  config.scheduler.mode = SchedulingMode::kEstimateAware;
  config.scheduler_period = 30.0;
  config.seed = 99;
  return config;
}

void train(LatticeSystem& system, std::size_t corpus = 120) {
  RuntimeEstimator::Config est;
  est.forest.n_trees = 60;
  est.retrain_every = 0;
  system.estimator() = RuntimeEstimator(est);
  util::Rng rng(3);
  system.estimator().train(generate_corpus(corpus, system.cost_model(), rng));
}

TEST(Integration, FormToFinishedBatch) {
  // The Figure-1 flow: web form values -> validated config -> GarliJob ->
  // portal batch -> grid execution -> results manifest.
  const AppDescription& app = garli_app_description();
  const std::map<std::string, std::string> form{
      {"datatype", "nucleotide"},   {"ratematrix", "hky85"},
      {"ratehetmodel", "gamma"},    {"numratecats", "4"},
      {"searchreps", "1"},          {"genthreshfortopoterm", "250"},
      {"sequencefile", "data.fas"}, {"email", "user@example.org"}};
  ASSERT_TRUE(app.validate(form).empty());
  const phylo::GarliJob job =
      phylo::GarliJob::from_config(app.to_config(form).to_string());

  LatticeSystem system(quick_config());
  grid::BatchQueueResource::Config cluster;
  cluster.nodes = 16;
  cluster.cores_per_node = 4;
  system.add_cluster("hpc", cluster);
  system.calibrate_speeds();
  train(system);

  Portal portal(system);
  SubmissionRequest request;
  request.user_id = user_id_from_email(form.at("email"));
  request.user_class = UserClass::kRegistered;
  request.user_email = form.at("email");
  request.job = job;
  request.replicates = 40;
  request.num_taxa = 60;
  request.num_patterns = 400;
  const auto outcome = portal.submit(request);
  ASSERT_TRUE(outcome.accepted);
  system.run_until_drained(120.0 * 86400.0);

  const BatchRecord* record = portal.batch(outcome.batch_id);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(record->done);
  EXPECT_EQ(record->completed_jobs, record->grid_jobs);
  EXPECT_EQ(record->notifications.back().kind, "completed");
  EXPECT_EQ(record->result_manifest.size(), record->grid_jobs);
  for (const std::string& entry : record->result_manifest) {
    EXPECT_NE(entry.find("best_tree"), std::string::npos);
  }
}

TEST(Integration, CancelPendingJob) {
  LatticeSystem system(quick_config());
  // No resources: jobs stay pending.
  GarliFeatures f;
  const std::uint64_t id = system.submit_garli_job(f);
  EXPECT_EQ(system.pending_jobs(), 1u);
  EXPECT_TRUE(system.cancel_job(id));
  EXPECT_EQ(system.pending_jobs(), 0u);
  EXPECT_EQ(system.job(id)->state, grid::JobState::kCancelled);
  EXPECT_FALSE(system.cancel_job(id));  // already terminal
  EXPECT_FALSE(system.cancel_job(424242));  // unknown
}

TEST(Integration, CancelRunningJobOnCluster) {
  LatticeSystem system(quick_config());
  grid::BatchQueueResource::Config cluster;
  cluster.nodes = 1;
  cluster.cores_per_node = 1;
  system.add_cluster("hpc", cluster);
  system.calibrate_speeds();
  GarliFeatures f;
  const std::uint64_t id = system.submit_job_with_runtime(f, 100.0 * 3600.0);
  system.run(3600.0);  // pump places it; it starts running
  ASSERT_EQ(system.job(id)->state, grid::JobState::kRunning);
  EXPECT_TRUE(system.cancel_job(id));
  EXPECT_EQ(system.job(id)->state, grid::JobState::kCancelled);
  // The slot is free again for future work.
  EXPECT_EQ(system.resource("hpc")->info().free_slots, 1u);
}

TEST(Integration, CancelBatchStopsRemainingWork) {
  LatticeSystem system(quick_config());
  grid::BatchQueueResource::Config cluster;
  cluster.nodes = 2;
  cluster.cores_per_node = 1;
  system.add_cluster("hpc", cluster);
  system.calibrate_speeds();
  train(system);

  Portal portal(system);
  phylo::GarliJob job;
  job.model.rate_het = phylo::RateHet::kGamma;
  SubmissionRequest request;
  request.user_id = user_id_from_email("user@example.org");
  request.user_class = UserClass::kRegistered;
  request.user_email = "user@example.org";
  request.job = job;
  request.replicates = 10;
  request.num_taxa = 80;
  request.num_patterns = 600;
  const auto outcome = portal.submit(request);
  ASSERT_TRUE(outcome.accepted);
  system.run(2.0 * 3600.0);
  const std::size_t cancelled = portal.cancel_batch(outcome.batch_id);
  EXPECT_GT(cancelled, 0u);
  system.run_until_drained(60.0 * 86400.0);
  const BatchRecord* record = portal.batch(outcome.batch_id);
  EXPECT_TRUE(record->done);
  EXPECT_EQ(record->completed_jobs + record->failed_jobs,
            record->grid_jobs);
  bool saw_cancel_note = false;
  for (const auto& note : record->notifications) {
    if (note.kind == "cancelled") saw_cancel_note = true;
  }
  EXPECT_TRUE(saw_cancel_note);
  EXPECT_EQ(portal.cancel_batch(outcome.batch_id), 0u);  // already done
}

TEST(Integration, OnlineObservationsImproveColdStartEstimator) {
  // Start the grid with NO trained model: early jobs get no estimates
  // (load-only routing); completions stream observations in; after enough
  // history the estimator comes online and predicts well.
  LatticeSystem system(quick_config());
  grid::BatchQueueResource::Config cluster;
  cluster.nodes = 32;
  cluster.cores_per_node = 4;
  system.add_cluster("hpc", cluster);
  system.calibrate_speeds();
  RuntimeEstimator::Config est;
  est.forest.n_trees = 60;
  est.retrain_every = 20;
  system.estimator() = RuntimeEstimator(est);
  ASSERT_FALSE(system.estimator().trained());

  util::Rng rng(17);
  for (int i = 0; i < 60; ++i) {
    GarliFeatures f = random_features(rng);
    system.submit_garli_job(f);
  }
  system.run_until_drained(200.0 * 86400.0);
  EXPECT_EQ(system.metrics().completed, 60u);
  EXPECT_TRUE(system.estimator().trained());
  EXPECT_GE(system.estimator().corpus_size(), 60u);

  // Predictions should now be in the right ballpark (within ~3x median).
  const GarliCostModel& model = system.cost_model();
  std::vector<double> log_errors;
  for (int i = 0; i < 30; ++i) {
    const GarliFeatures f = random_features(rng);
    const auto predicted = system.estimator().predict(f);
    ASSERT_TRUE(predicted.has_value());
    log_errors.push_back(
        std::abs(std::log(*predicted / model.expected_runtime(f))));
  }
  EXPECT_LT(util::median(log_errors), std::log(3.0));
}

TEST(Integration, BoincDeadlinesComeFromEstimates) {
  LatticeSystem system(quick_config());
  boinc::BoincPoolConfig pool;
  pool.hosts = 50;
  pool.mean_on_hours = 10000.0;
  pool.mean_off_hours = 0.001;
  pool.mean_lifetime_days = 1e6;
  pool.seed = 5;
  boinc::BoincServer& server = system.add_boinc_pool("boinc", pool);
  system.calibrate_speeds();
  train(system);

  GarliFeatures f;
  f.num_taxa = 60;
  f.num_patterns = 500;
  const std::uint64_t id = system.submit_garli_job(f);
  system.run(120.0);  // one pump
  ASSERT_EQ(server.workunits().size(), 1u);
  const boinc::Workunit& wu = server.workunits().begin()->second;
  const grid::GridJob* job = system.job(id);
  ASSERT_TRUE(job->estimated_reference_runtime.has_value());
  const double expected = system.config().deadline.deadline_seconds(
      *job->estimated_reference_runtime);
  EXPECT_DOUBLE_EQ(wu.delay_bound, expected);
  EXPECT_NE(wu.delay_bound, server.config().default_delay_bound);
  system.run_until_drained(60.0 * 86400.0);
}

TEST(Integration, MdsOutageStopsPlacementThenRecovers) {
  LatticeSystem system(quick_config());
  grid::BatchQueueResource::Config cluster;
  cluster.nodes = 4;
  cluster.cores_per_node = 2;
  system.add_cluster("hpc", cluster);
  system.calibrate_speeds();
  train(system);

  // Knock the resource "offline" by backdating its MDS entry: queue a job
  // after the TTL has expired with no fresh report. Providers report every
  // mds_report_period, so instead verify the offline logic directly: a
  // resource that stops reporting is skipped by the scheduler.
  grid::ResourceInfo ghost;
  ghost.name = "ghost";
  ghost.kind = grid::ResourceKind::kPbsCluster;
  ghost.total_slots = 1000;
  ghost.free_slots = 1000;
  ghost.node_memory_gb = 999.0;
  ghost.platforms = {grid::PlatformSpec{}};
  ghost.stable = true;
  system.mds().report(ghost);  // reported once, then silence

  // After the TTL the ghost is gone and jobs land on the live cluster.
  system.simulation().at(system.config().mds_ttl + 1.0, [] {});
  system.simulation().run(system.config().mds_ttl + 1.0);
  GarliFeatures f;
  const std::uint64_t id = system.submit_garli_job(f);
  system.run_until_drained(90.0 * 86400.0);
  EXPECT_EQ(system.job(id)->resource, "hpc");
  EXPECT_EQ(system.metrics().completed, 1u);
}

TEST(Integration, MixedInventoryBatchWithChurnFinishes) {
  // The everything-at-once test: clusters + condor + boinc, preemptions,
  // deadline reissues, rescheduling, portal bookkeeping.
  LatticeSystem system(quick_config());
  grid::BatchQueueResource::Config cluster;
  cluster.nodes = 4;
  cluster.cores_per_node = 4;
  system.add_cluster("hpc", cluster);
  grid::CondorPool::Config condor;
  condor.machines = 25;
  condor.mean_idle_hours = 4.0;
  condor.mean_busy_hours = 4.0;
  condor.seed = 7;
  system.add_condor_pool("condor", condor);
  boinc::BoincPoolConfig pool;
  pool.hosts = 40;
  pool.seed = 11;
  system.add_boinc_pool("boinc", pool);
  system.calibrate_speeds();
  train(system);

  Portal portal(system);
  phylo::GarliJob job;
  SubmissionRequest request;
  request.user_id = user_id_from_email("user@example.org");
  request.user_class = UserClass::kGuest;
  request.user_email = "user@example.org";
  request.job = job;
  request.replicates = 60;
  request.num_taxa = 50;
  request.num_patterns = 350;
  const auto outcome = portal.submit(request);
  ASSERT_TRUE(outcome.accepted);
  system.run_until_drained(300.0 * 86400.0);
  const BatchRecord* record = portal.batch(outcome.batch_id);
  EXPECT_TRUE(record->done);
  EXPECT_GT(record->completed_jobs, record->grid_jobs * 8 / 10);
}

}  // namespace
}  // namespace lattice::core
