// Tests for the ISA-dispatched likelihood kernels (src/phylo/kernels/):
// every vector tier must be BIT-identical to the scalar oracle — not just
// close — on randomized inputs covering internal/leaf children, 4-state
// and generic state counts, missing data, rescale-triggering magnitudes,
// and partial tail blocks; the dispatcher must parse/clamp tiers; and a
// whole engine evaluation must produce identical bits on every supported
// tier, twice in a row.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "phylo/kernels/kernels.hpp"
#include "phylo/likelihood.hpp"
#include "phylo/simulate.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace lattice::phylo::kernels {
namespace {

constexpr std::size_t kB = kPatternBlock;

std::vector<IsaTier> supported_tiers() {
  std::vector<IsaTier> tiers{IsaTier::kScalar};
  if (tier_supported(IsaTier::kAvx2)) tiers.push_back(IsaTier::kAvx2);
  if (tier_supported(IsaTier::kAvx512)) tiers.push_back(IsaTier::kAvx512);
  return tiers;
}

// Random block inputs for one (ns, leaf?) kernel case. `scale_mag` pulls
// the partial magnitudes down so some cases cross kScaleThreshold and
// exercise the rescale branch.
struct BlockCase {
  std::size_t ns;
  util::aligned_vector<double> dst_init;   // pre-existing parent block
  util::aligned_vector<double> child;      // internal child partial
  std::vector<State> states;               // leaf child states
  util::aligned_vector<double> p;          // transition matrix
  util::aligned_vector<double> sl, sr;     // child cumulative scales
  util::aligned_vector<double> freqs;
};

BlockCase random_case(util::Rng& rng, std::size_t ns, double scale_mag) {
  BlockCase c;
  c.ns = ns;
  c.dst_init.resize(ns * kB);
  c.child.resize(ns * kB);
  c.states.resize(kB);
  c.p.resize(ns * ns);
  c.sl.resize(kB);
  c.sr.resize(kB);
  c.freqs.resize(ns);
  for (auto& v : c.dst_init) v = rng.uniform() * scale_mag;
  for (auto& v : c.child) v = rng.uniform() * scale_mag;
  for (auto& v : c.p) v = rng.uniform();
  for (auto& v : c.sl) v = -rng.uniform() * 100.0;
  for (auto& v : c.sr) v = -rng.uniform() * 100.0;
  for (auto& v : c.freqs) v = 0.1 + rng.uniform();
  for (std::size_t i = 0; i < kB; ++i) {
    // ~1 in 8 lanes missing data.
    c.states[i] = rng.uniform() < 0.125
                      ? kMissing
                      : static_cast<State>(rng.below(ns));
  }
  return c;
}

// Run one tier's kernels over a case; returns (block, sb, site) buffers.
struct TierResult {
  util::aligned_vector<double> block;
  util::aligned_vector<double> sb;
  util::aligned_vector<double> site;
};

TierResult run_tier(const KernelOps& ops, const BlockCase& c, bool leaf,
                    std::size_t lanes) {
  TierResult r;
  r.block = c.dst_init;
  r.sb.assign(kB, 0.0);
  r.site.assign(kB, 0.0);
  if (leaf) {
    ops.apply_child_assign(r.block.data(), nullptr, c.states.data(),
                           c.p.data(), c.ns);
    ops.apply_child_mul(r.block.data(), nullptr, c.states.data(), c.p.data(),
                        c.ns);
  } else {
    ops.apply_child_assign(r.block.data(), c.child.data(), nullptr,
                           c.p.data(), c.ns);
    ops.apply_child_mul(r.block.data(), c.child.data(), nullptr, c.p.data(),
                        c.ns);
  }
  ops.block_epilogue(r.block.data(), r.sb.data(), c.sl.data(), c.sr.data(),
                     c.ns, lanes);
  ops.root_sites(r.block.data(), c.freqs.data(), c.ns, r.site.data());
  return r;
}

void expect_bits_equal(const util::aligned_vector<double>& a,
                       const util::aligned_vector<double>& b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
        << what << "[" << i << "]: scalar=" << a[i] << " vector=" << b[i];
  }
}

TEST(Kernels, VectorTiersBitMatchScalarOnRandomBlocks) {
  const auto tiers = supported_tiers();
  if (tiers.size() == 1) GTEST_SKIP() << "host has no vector tier";
  util::Rng rng(20260808);
  const KernelOps& scalar = ops_for(IsaTier::kScalar);
  // ns=4 hits the unrolled DNA kernels (and the vector permute leaf
  // path), ns=20 the generic ones; scale_mag=1e-110 forces rescales.
  const std::size_t state_counts[] = {4, 20, 61};
  const double magnitudes[] = {1.0, 1e-110};
  for (const std::size_t ns : state_counts) {
    for (const double mag : magnitudes) {
      for (int leaf = 0; leaf < 2; ++leaf) {
        for (int rep = 0; rep < 8; ++rep) {
          const BlockCase c = random_case(rng, ns, mag);
          const std::size_t lanes = rep % 2 == 0 ? kB : 1 + rng.below(kB);
          const TierResult want =
              run_tier(scalar, c, leaf != 0, lanes);
          for (std::size_t t = 1; t < tiers.size(); ++t) {
            const TierResult got =
                run_tier(ops_for(tiers[t]), c, leaf != 0, lanes);
            expect_bits_equal(want.block, got.block, "block");
            expect_bits_equal(want.sb, got.sb, "scale");
            expect_bits_equal(want.site, got.site, "site");
          }
        }
      }
    }
  }
}

TEST(Kernels, RelativeAgreementIsAlsoTight) {
  // Belt and braces for readers who distrust bit-compares: relative
  // agreement within 1e-10 (trivially true given bit-identity).
  const auto tiers = supported_tiers();
  if (tiers.size() == 1) GTEST_SKIP() << "host has no vector tier";
  util::Rng rng(7);
  const BlockCase c = random_case(rng, 4, 1.0);
  const TierResult want = run_tier(ops_for(IsaTier::kScalar), c, false, kB);
  for (std::size_t t = 1; t < tiers.size(); ++t) {
    const TierResult got = run_tier(ops_for(tiers[t]), c, false, kB);
    for (std::size_t i = 0; i < want.block.size(); ++i) {
      EXPECT_NEAR(got.block[i] / want.block[i], 1.0, 1e-10);
    }
  }
}

TEST(Kernels, TailBlockPadsNeverTriggerRescale) {
  // A block whose valid lanes are healthy but whose pad lanes are tiny
  // must not rescale: the epilogue's max scan covers valid lanes only.
  for (const IsaTier tier : supported_tiers()) {
    const KernelOps& ops = ops_for(tier);
    const std::size_t ns = 4;
    const std::size_t lanes = 5;
    util::aligned_vector<double> block(ns * kB, 1e-200);
    for (std::size_t x = 0; x < ns; ++x) {
      for (std::size_t i = 0; i < lanes; ++i) block[x * kB + i] = 0.5;
    }
    util::aligned_vector<double> sb(kB, 0.0);
    ops.block_epilogue(block.data(), sb.data(), nullptr, nullptr, ns, lanes);
    EXPECT_EQ(block[0], 0.5) << tier_name(tier);
    EXPECT_EQ(sb[0], 0.0) << tier_name(tier);
    // And the converse: all-valid tiny lanes do rescale.
    util::aligned_vector<double> tiny(ns * kB, 1e-200);
    util::aligned_vector<double> sb2(kB, 0.0);
    ops.block_epilogue(tiny.data(), sb2.data(), nullptr, nullptr, ns, kB);
    EXPECT_EQ(tiny[0], 1.0) << tier_name(tier);
    EXPECT_EQ(sb2[0], std::log(1e-200)) << tier_name(tier);
  }
}

TEST(Kernels, EngineEvaluationBitIdenticalAcrossTiersTwiceOver) {
  util::Rng rng(20260808);
  ModelSpec spec;
  spec.rate_het = RateHet::kGamma;
  spec.n_rate_categories = 4;
  const auto dataset = simulate_dataset(12, 171, spec, rng, 0.15);
  const PatternizedAlignment patterns(dataset.alignment);
  const SubstitutionModel model(spec);

  std::vector<double> reference;
  for (const IsaTier tier : supported_tiers()) {
    for (int run = 0; run < 2; ++run) {  // twin runs: per-tier stability
      LikelihoodEngine engine(patterns);
      engine.force_isa(tier);
      EXPECT_STREQ(engine.isa_name(), tier_name(tier));
      std::vector<double> values;
      Tree tree = dataset.tree;
      values.push_back(engine.log_likelihood(tree, model));
      for (int i = 0; i < 6; ++i) {
        const int index = static_cast<int>((7 * i + 1) %
                                           static_cast<int>(tree.n_nodes()));
        if (index != tree.root()) {
          tree.set_branch_length(index,
                                 tree.branch_length(index) * 1.07 + 1e-4);
        }
        values.push_back(engine.log_likelihood(tree, model));
      }
      if (reference.empty()) {
        reference = values;
      } else {
        ASSERT_EQ(reference.size(), values.size());
        for (std::size_t i = 0; i < values.size(); ++i) {
          EXPECT_EQ(std::memcmp(&reference[i], &values[i], sizeof(double)),
                    0)
              << tier_name(tier) << " run " << run << " eval " << i;
        }
      }
    }
  }
}

TEST(Kernels, ParseTierIsStrict) {
  EXPECT_EQ(parse_tier("scalar"), IsaTier::kScalar);
  EXPECT_EQ(parse_tier("avx2"), IsaTier::kAvx2);
  EXPECT_EQ(parse_tier("avx512"), IsaTier::kAvx512);
  EXPECT_THROW(parse_tier(""), std::invalid_argument);
  EXPECT_THROW(parse_tier("AVX2"), std::invalid_argument);
  EXPECT_THROW(parse_tier("sse2"), std::invalid_argument);
}

TEST(Kernels, OpsForClampsToSupportedTier) {
  // Whatever the host, asking for any tier must return a usable table
  // whose name matches a supported tier.
  for (const IsaTier want :
       {IsaTier::kScalar, IsaTier::kAvx2, IsaTier::kAvx512}) {
    const KernelOps& ops = ops_for(want);
    EXPECT_NE(ops.name, nullptr);
    EXPECT_TRUE(tier_supported(parse_tier(ops.name)));
    if (tier_supported(want)) EXPECT_STREQ(ops.name, tier_name(want));
  }
  EXPECT_STREQ(ops_for(IsaTier::kScalar).name, "scalar");
}

TEST(Kernels, AlignedVectorsAreCacheLineAligned) {
  for (std::size_t n : {1, 7, 64, 1000}) {
    util::aligned_vector<double> v(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u);
  }
}

}  // namespace
}  // namespace lattice::phylo::kernels
