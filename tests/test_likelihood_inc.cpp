// Tests for the incremental likelihood engine: dirty-partial reuse must be
// indistinguishable from full recomputation across arbitrary mutation
// sequences, pooled evaluation must be bit-identical to serial, and the
// matrix cache's second-chance eviction must keep serving the hot set.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "phylo/likelihood.hpp"
#include "phylo/simulate.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace lattice::phylo {
namespace {

// One randomized step of the GA's mutation repertoire applied in place.
void random_mutation(Tree& tree, util::Rng& rng) {
  const double which = rng.uniform();
  if (which < 0.3) {
    const std::vector<int> internals = tree.internal_edge_nodes();
    if (!internals.empty()) {
      const int node =
          internals[static_cast<std::size_t>(rng.below(internals.size()))];
      tree.nni(node, static_cast<int>(rng.below(2)));
      return;
    }
  } else if (which < 0.5) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      const int prune = static_cast<int>(rng.below(tree.n_nodes()));
      const int graft = static_cast<int>(rng.below(tree.n_nodes()));
      if (tree.spr(prune, graft)) return;
    }
  }
  const int index = static_cast<int>(rng.below(tree.n_nodes()));
  if (index != tree.root()) {
    const double factor = rng.lognormal(0.0, 0.3);
    const double updated =
        std::clamp(tree.branch_length(index) * factor, 1e-8, 10.0);
    tree.set_branch_length(index, updated);
  }
}

TEST(IncrementalLikelihood, MatchesFullRecomputeAcross1000Mutations) {
  util::Rng rng(20260806);
  ModelSpec spec;
  spec.rate_het = RateHet::kGamma;
  spec.n_rate_categories = 4;
  const auto dataset = simulate_dataset(16, 300, spec, rng, 0.1);
  const PatternizedAlignment patterns(dataset.alignment);
  const SubstitutionModel model(spec);

  LikelihoodEngine incremental(patterns);
  incremental.enable_matrix_cache();
  LikelihoodEngine full(patterns);
  full.enable_incremental(false);

  Tree tree = dataset.tree;
  for (int step = 0; step < 1000; ++step) {
    random_mutation(tree, rng);
    const double inc = incremental.log_likelihood(tree, model);
    const double ref = full.log_likelihood(tree, model);
    ASSERT_NEAR(inc, ref, 1e-10 * std::max(1.0, std::abs(ref)))
        << "diverged at step " << step;
  }
  // The whole point: mutations touch a path to the root, not the tree.
  EXPECT_GT(incremental.partials_reused(), 0u);
  EXPECT_LT(incremental.partials_recomputed(), full.partials_recomputed());
}

TEST(IncrementalLikelihood, FreshTreeObjectFallsBackToFullRecompute) {
  util::Rng rng(7);
  ModelSpec spec;
  const auto dataset = simulate_dataset(10, 200, spec, rng, 0.1);
  const PatternizedAlignment patterns(dataset.alignment);
  const SubstitutionModel model(spec);

  LikelihoodEngine engine(patterns);
  const double a = engine.log_likelihood(dataset.tree, model);
  // A copy has a fresh uid: the engine must not trust stale partials even
  // though per-node revisions coincide.
  Tree copy = dataset.tree;
  copy.set_branch_length(0, copy.branch_length(0) * 3.0);
  const double b = engine.log_likelihood(copy, model);
  EXPECT_NE(a, b);

  LikelihoodEngine fresh(patterns);
  EXPECT_DOUBLE_EQ(b, fresh.log_likelihood(copy, model));
}

TEST(IncrementalLikelihood, SingleBranchPerturbationReusesMostPartials) {
  util::Rng rng(11);
  ModelSpec spec;
  spec.rate_het = RateHet::kGamma;
  spec.n_rate_categories = 4;
  const auto dataset = simulate_dataset(32, 500, spec, rng, 0.1);
  const PatternizedAlignment patterns(dataset.alignment);
  const SubstitutionModel model(spec);

  LikelihoodEngine engine(patterns);
  Tree tree = dataset.tree;
  engine.log_likelihood(tree, model);
  const std::uint64_t after_first = engine.partials_recomputed();

  // Perturb one leaf branch: only its ancestor path should recompute.
  tree.set_branch_length(0, tree.branch_length(0) * 1.1);
  engine.log_likelihood(tree, model);
  const std::uint64_t second = engine.partials_recomputed() - after_first;
  const std::uint64_t n_internal = tree.n_nodes() - tree.n_leaves();
  EXPECT_LT(second, n_internal * 4);  // strictly fewer than all (node, cat)
  EXPECT_GT(engine.partials_reused(), 0u);
}

TEST(IncrementalLikelihood, PooledEvaluationBitIdenticalToSerial) {
  util::Rng rng(13);
  ModelSpec spec;
  spec.rate_het = RateHet::kGamma;
  spec.n_rate_categories = 4;
  const auto dataset = simulate_dataset(20, 400, spec, rng, 0.1);
  const PatternizedAlignment patterns(dataset.alignment);
  const SubstitutionModel model(spec);

  util::ThreadPool pool(4);
  LikelihoodEngine serial(patterns);
  LikelihoodEngine pooled(patterns);
  pooled.set_thread_pool(&pool);

  Tree tree = dataset.tree;
  util::Rng mut_rng(17);
  for (int step = 0; step < 50; ++step) {
    random_mutation(tree, mut_rng);
    const double s = serial.log_likelihood(tree, model);
    const double p = pooled.log_likelihood(tree, model);
    ASSERT_EQ(s, p) << "pooled result diverged bit-wise at step " << step;
  }
}

TEST(IncrementalLikelihood, PooledSingleCategoryUsesPatternBlocks) {
  util::Rng rng(19);
  ModelSpec spec;  // single rate category
  const auto dataset = simulate_dataset(12, 600, spec, rng, 0.1);
  const PatternizedAlignment patterns(dataset.alignment);
  const SubstitutionModel model(spec);

  util::ThreadPool pool(4);
  LikelihoodEngine serial(patterns);
  LikelihoodEngine pooled(patterns);
  pooled.set_thread_pool(&pool);
  EXPECT_EQ(serial.log_likelihood(dataset.tree, model),
            pooled.log_likelihood(dataset.tree, model));
}

TEST(IncrementalLikelihood, AminoAcidAndCodonModelsStayConsistent) {
  util::Rng rng(23);
  ModelSpec spec;
  spec.data_type = DataType::kAminoAcid;
  spec.rate_het = RateHet::kGamma;
  spec.n_rate_categories = 2;
  const auto dataset = simulate_dataset(8, 120, spec, rng, 0.15);
  const PatternizedAlignment patterns(dataset.alignment);
  const SubstitutionModel model(spec);

  LikelihoodEngine incremental(patterns);
  LikelihoodEngine full(patterns);
  full.enable_incremental(false);

  Tree tree = dataset.tree;
  util::Rng mut_rng(29);
  for (int step = 0; step < 100; ++step) {
    random_mutation(tree, mut_rng);
    const double inc = incremental.log_likelihood(tree, model);
    const double ref = full.log_likelihood(tree, model);
    ASSERT_NEAR(inc, ref, 1e-10 * std::max(1.0, std::abs(ref)));
  }
}

TEST(MatrixCache, SecondChanceEvictionKeepsServingUnderPressure) {
  util::Rng rng(31);
  ModelSpec spec;
  spec.rate_het = RateHet::kGamma;
  spec.n_rate_categories = 4;
  const auto dataset = simulate_dataset(24, 200, spec, rng, 0.1);
  const PatternizedAlignment patterns(dataset.alignment);
  const SubstitutionModel model(spec);

  // Capacity far below the working set (24 taxa -> 46 branches x 4 rates):
  // the old wholesale clear() would discard everything repeatedly; the
  // second-chance sweep must keep evicting while results stay exact.
  LikelihoodEngine tight(patterns);
  tight.enable_matrix_cache(16);
  tight.enable_incremental(false);
  LikelihoodEngine reference(patterns);
  reference.enable_incremental(false);

  Tree tree = dataset.tree;
  for (int step = 0; step < 5; ++step) {
    tree.set_branch_length(1, tree.branch_length(1) * 1.05);
    ASSERT_DOUBLE_EQ(tight.log_likelihood(tree, model),
                     reference.log_likelihood(tree, model));
  }
  EXPECT_GT(tight.cache_evictions(), 0u);
  EXPECT_GT(tight.cache_misses(), 0u);
}

TEST(MatrixCache, HotEntriesSurviveEviction) {
  util::Rng rng(37);
  ModelSpec spec;
  const auto dataset = simulate_dataset(6, 100, spec, rng, 0.1);
  const PatternizedAlignment patterns(dataset.alignment);
  const SubstitutionModel model(spec);

  LikelihoodEngine engine(patterns);
  engine.enable_matrix_cache(8);
  Tree tree = dataset.tree;
  // 6 taxa -> 10 cached matrices per full evaluation; capacity 8 forces
  // sweeps. Re-evaluating the same tree repeatedly must still produce
  // hits, because recently referenced matrices get a second chance.
  engine.enable_incremental(false);
  for (int round = 0; round < 6; ++round) {
    engine.log_likelihood(tree, model);
  }
  EXPECT_GT(engine.cache_hits(), 0u);
}

}  // namespace
}  // namespace lattice::phylo
