// Tests for the lattice-lint rule engine: every rule must fire on a
// synthetic snippet, respect the allow() suppression syntax, and report
// stable `file:line rule-id` output. The engine itself is the tentpole of
// ISSUE 3 — these tests are what let the *next* PR refactor the linter
// without silently losing a rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lattice-lint/lint.hpp"
#include "lattice-lint/model.hpp"

namespace lattice::lint {
namespace {

Options deterministic() {
  Options options;
  options.deterministic = true;
  return options;
}

std::vector<std::string> rules_fired(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

bool fired(const std::vector<Finding>& findings, std::string_view rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// --- wall-clock -----------------------------------------------------------

TEST(LintWallClock, FiresOnSteadyClockInDeterministicCode) {
  const auto findings = lint_source(
      "src/sim/x.cpp",
      "void f() { auto t = std::chrono::steady_clock::now(); }\n",
      deterministic());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wall-clock");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintWallClock, FiresOnCTimeAndWallNowUs) {
  const std::string src =
      "long a = time(nullptr);\n"
      "double b = obs::Tracer::wall_now_us();\n";
  const auto findings = lint_source("f.cpp", src, deterministic());
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_EQ(findings[1].rule, "wall-clock");
}

TEST(LintWallClock, DoesNotFireOnRuntimeIdentifiersOrNonDeterministicFiles) {
  // "runtime(" embeds "time(" behind a word character; "localtime" is only
  // matched as a whole call.
  const std::string src =
      "double x = job.reference_runtime();\n"
      "double y = estimate_runtime(job);\n";
  EXPECT_TRUE(lint_source("f.cpp", src, deterministic()).empty());
  // Same clock read, but the file is not deterministic (e.g. src/obs).
  Options obs;
  obs.deterministic = false;
  EXPECT_TRUE(lint_source("src/obs/trace.cpp",
                          "auto t = std::chrono::steady_clock::now();\n", obs)
                  .empty());
}

TEST(LintWallClock, IgnoresCommentsAndStrings) {
  const std::string src =
      "// std::chrono::steady_clock::now() in prose\n"
      "const char* s = \"time(\";\n"
      "/* rand() inside a block comment */\n";
  EXPECT_TRUE(lint_source("f.cpp", src, deterministic()).empty());
}

// --- ambient-rng ----------------------------------------------------------

TEST(LintAmbientRng, FiresOnRandSrandRandomDevice) {
  const std::string src =
      "int a = rand();\n"
      "srand(42);\n"
      "std::random_device rd;\n";
  const auto findings = lint_source("f.cpp", src, deterministic());
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "ambient-rng");
}

TEST(LintAmbientRng, DoesNotFireOnSeededRngOrSimilarNames) {
  const std::string src =
      "util::Rng rng(20260806);\n"
      "double u = rng.uniform();\n"
      "auto s = operand(x);\n";  // "rand(" behind a word char
  EXPECT_TRUE(lint_source("f.cpp", src, deterministic()).empty());
}

// --- unordered-member / unordered-iteration -------------------------------

TEST(LintUnordered, MemberDeclarationNeedsSuppression) {
  const auto findings = lint_source(
      "src/sim/x.hpp", "std::unordered_set<std::uint64_t> ids_;\n",
      deterministic());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-member");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintUnordered, IncludeLineIsExemptFromMemberRule) {
  EXPECT_TRUE(lint_source("f.hpp", "#include <unordered_set>\n",
                          deterministic())
                  .empty());
}

TEST(LintUnordered, RangeForOverUnorderedVariableFires) {
  const std::string src =
      "std::unordered_map<int, int> cache_;  "
      "// lattice-lint: allow(unordered-member) — lookup only\n"
      "void f() {\n"
      "  for (const auto& kv : cache_) { use(kv); }\n"
      "}\n";
  const auto findings = lint_source("f.cpp", src, deterministic());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iteration");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintUnordered, IteratorWalkAndAliasDeclarationsFire) {
  const std::string src =
      "using Cache = std::unordered_map<int, int>;  "
      "// lattice-lint: allow(unordered-member) — alias for lookups\n"
      "Cache cache_;\n"
      "void f() {\n"
      "  for (auto it = cache_.begin(); it != cache_.end();) { ++it; }\n"
      "}\n";
  const auto findings = lint_source("f.cpp", src, deterministic());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iteration");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintUnordered, IterationOverOrderedContainersIsFine) {
  const std::string src =
      "std::map<int, int> sorted_;\n"
      "void f() {\n"
      "  for (const auto& kv : sorted_) { use(kv); }\n"
      "}\n";
  EXPECT_TRUE(lint_source("f.cpp", src, deterministic()).empty());
}

// --- metric-name ----------------------------------------------------------

TEST(LintMetricName, AcceptsCatalogGrammarEverywhere) {
  Options any;  // metric-name applies outside deterministic dirs too
  const std::string src =
      "auto& c = m.counter(\"boinc.results_reissued\", \"results\", "
      "\"reissues\");\n"
      "int t = tracer.track(\"sim.kernel\");\n"
      "tracer.async_begin(\"attempt\", \"grid.attempt\", id, now);\n";
  EXPECT_TRUE(lint_source("f.cpp", src, any).empty());
}

TEST(LintMetricName, RejectsOffGrammarNames) {
  Options any;
  const auto findings = lint_source(
      "f.cpp",
      "auto& c = m.counter(\"BadName\", \"u\", \"h\");\n"
      "auto& g = m.gauge(\"nodots\", \"u\", \"h\");\n"
      "auto& h = m.histogram(\"grid.Queue_Wait\", {1.0}, \"s\", \"h\");\n",
      any);
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "metric-name");
}

TEST(LintMetricName, ChecksTraceCategoryNotSpanName) {
  Options any;
  // Span name "attempt" is legal (no grammar requirement); the *category*
  // carries the subsystem grammar.
  const auto findings = lint_source(
      "f.cpp", "tracer.async_end(\"attempt\", \"NotAGoodCategory\", 1, t);\n",
      any);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "metric-name");
}

TEST(LintMetricName, LookupHelpersAreNotRegistrationSites) {
  Options any;
  const std::string src =
      "const auto* c = m.find_counter(\"whatever name\");\n"
      "auto total = m.counter_total(\"Also Ignored\");\n";
  EXPECT_TRUE(lint_source("f.cpp", src, any).empty());
}

// --- intrinsics confinement ----------------------------------------------

TEST(LintIntrinsics, FiresOutsideKernelModule) {
  Options any;  // applies everywhere, not just deterministic dirs
  const auto findings = lint_source(
      "src/phylo/likelihood.cpp",
      "#include <immintrin.h>\n"
      "__m256d v = _mm256_loadu_pd(p);\n"
      "#if defined(__AVX2__)\n"
      "#endif\n",
      any);
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "intrinsics-confined");
  }
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_EQ(findings[2].line, 3);
}

TEST(LintIntrinsics, KernelModuleFilesAreExempt) {
  Options kernels;
  kernels.intrinsics_allowed = true;
  const std::string src =
      "#include <immintrin.h>\n"
      "__m512d v = _mm512_mul_pd(a, b);\n";
  EXPECT_TRUE(
      lint_source("src/phylo/kernels/kernels_avx512.cpp", src, kernels)
          .empty());
}

TEST(LintIntrinsics, IgnoresLookalikesCommentsAndStrings) {
  Options any;
  const std::string src =
      "// __m256d and _mm256_add_pd( live in kernel docs only\n"
      "const char* s = \"_mm512_fmadd_pd(\";\n"
      "double comm_mbps = 1.0; int mm_count = 3;\n"
      "hmm_forward(x);\n";
  EXPECT_TRUE(lint_source("src/sim/clock.cpp", src, any).empty());
}

// --- suppressions ---------------------------------------------------------

TEST(LintSuppression, SameLineAllowSilencesTheRule) {
  const std::string src =
      "auto t = std::chrono::steady_clock::now();  "
      "// lattice-lint: allow(wall-clock) — benchmark helper, measured "
      "wall time is the payload\n";
  EXPECT_TRUE(lint_source("f.cpp", src, deterministic()).empty());
}

TEST(LintSuppression, PrecedingCommentLineCoversTheNextLine) {
  const std::string src =
      "// lattice-lint: allow(ambient-rng) — documented fallback seed\n"
      "std::random_device rd;\n";
  EXPECT_TRUE(lint_source("f.cpp", src, deterministic()).empty());
}

TEST(LintSuppression, DoesNotLeakToOtherLinesOrRules) {
  const std::string src =
      "// lattice-lint: allow(wall-clock) — reason\n"
      "std::random_device rd;\n";  // different rule: still fires
  const auto findings = lint_source("f.cpp", src, deterministic());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "ambient-rng");
}

TEST(LintSuppression, MissingReasonIsItselfAFinding) {
  const std::string src =
      "int a = rand();  // lattice-lint: allow(ambient-rng)\n";
  const auto findings = lint_source("f.cpp", src, deterministic());
  // Malformed suppression does not silence the rule, and is reported.
  EXPECT_TRUE(fired(findings, "suppression-syntax"));
  EXPECT_TRUE(fired(findings, "ambient-rng"));
}

TEST(LintSuppression, UnknownRuleIdIsReported) {
  const std::string src =
      "int x = 0;  // lattice-lint: allow(no-such-rule) — because\n";
  const auto findings = lint_source("f.cpp", src, deterministic());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "suppression-unknown-rule");
}

TEST(LintSuppression, CollectReturnsWellFormedInventory) {
  const std::string src =
      "int a = rand();  // lattice-lint: allow(ambient-rng) — golden seed\n"
      "int b = rand();  // lattice-lint: allow(ambient-rng)\n";  // malformed
  const auto inventory = collect_suppressions("src/sim/x.cpp", src);
  ASSERT_EQ(inventory.size(), 1u);
  EXPECT_EQ(inventory[0].file, "src/sim/x.cpp");
  EXPECT_EQ(inventory[0].line, 1);
  EXPECT_EQ(inventory[0].rule, "ambient-rng");
  EXPECT_EQ(inventory[0].reason, "golden seed");
}

// --- report format --------------------------------------------------------

TEST(LintReport, StableFileLineRuleFormat) {
  const auto findings = lint_source(
      "src/sim/simulation.cpp", "long t = time(nullptr);\n", deterministic());
  ASSERT_EQ(findings.size(), 1u);
  const std::string line = format(findings[0]);
  EXPECT_EQ(line.rfind("src/sim/simulation.cpp:1 wall-clock ", 0), 0u)
      << line;
}

TEST(LintReport, FindingsSortedByLineThenRule) {
  const std::string src =
      "std::random_device rd;\n"
      "long t = time(nullptr);\n";
  const auto findings = lint_source("f.cpp", src, deterministic());
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(rules_fired(findings),
            (std::vector<std::string>{"ambient-rng", "wall-clock"}));
  EXPECT_LT(findings[0].line, findings[1].line);
}

TEST(LintReport, RuleIdsAreStable) {
  const auto& ids = rule_ids();
  for (const char* expected :
       {"wall-clock", "ambient-rng", "unordered-member", "unordered-alias",
        "unordered-iteration", "kernel-callback-throw", "metric-name",
        "header-self-contained", "layering-violation", "layering-cycle",
        "suppression-dead"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
        << expected;
  }
}

// --- kernel-callback-throw ------------------------------------------------

TEST(LintKernelThrow, FiresOnThrowInsideAtLambda) {
  const std::string src =
      "void f(sim::Simulation& sim) {\n"
      "  sim.at(10.0, [&] { if (bad) throw std::runtime_error(\"x\"); });\n"
      "}\n";
  const auto findings = lint_source("src/sim/x.cpp", src, deterministic());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "kernel-callback-throw");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintKernelThrow, FiresThroughAfterAndPeriodicTask) {
  const std::string src =
      "void f(sim::Simulation& sim) {\n"
      "  sim->after(5.0, [] {\n"
      "    throw std::logic_error(\"boom\");\n"
      "  });\n"
      "  PeriodicTask pump(sim, 0.0, 60.0,\n"
      "                    [&] { throw too_much(); });\n"
      "}\n";
  const auto findings = lint_source("src/sim/x.cpp", src, deterministic());
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "kernel-callback-throw");
  EXPECT_EQ(findings[1].rule, "kernel-callback-throw");
}

TEST(LintKernelThrow, ThrowOutsideCallbackOrKernelIsFine) {
  const std::string src =
      "void validate(int x) {\n"
      "  if (x < 0) throw std::invalid_argument(\"x\");\n"
      "}\n"
      "void g(sim::Simulation& sim) {\n"
      "  sim.at(1.0, [] { finish(); });\n"
      "  map.at(key) = 1;  // std::map::at is not the kernel\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/sim/x.cpp", src, deterministic()).empty());
}

// --- project model: include graph + layering ------------------------------

std::vector<FileEntry> layered_tree() {
  return {
      {"src/util/a.hpp", "#pragma once\n"},
      {"src/sim/kernel.hpp", "#pragma once\n#include \"util/a.hpp\"\n"},
      {"src/grid/pool.hpp", "#pragma once\n#include \"sim/kernel.hpp\"\n"},
      {"src/grid/pool.cpp", "#include \"grid/pool.hpp\"\n"},
  };
}

Layering parse_ok(const std::string& ini) {
  std::vector<std::string> errors;
  Layering layering = parse_layering(ini, &errors);
  EXPECT_TRUE(errors.empty()) << errors.front();
  return layering;
}

TEST(LintModel, ResolvesIncludesAndModules) {
  const ProjectModel model = build_model(layered_tree());
  const ModelFile* pool = model.file("src/grid/pool.hpp");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->module, "grid");
  ASSERT_EQ(pool->includes.size(), 1u);
  EXPECT_EQ(pool->includes[0].target, "src/sim/kernel.hpp");
  EXPECT_EQ(pool->includes[0].line, 2);
}

TEST(LintModel, DownwardEdgesSatisfyTheDag) {
  const ProjectModel model = build_model(layered_tree());
  const Layering layering =
      parse_ok("[layers]\nutil\nsim\ngrid\n[consumers]\nbench\n");
  EXPECT_TRUE(check_layering(model, layering).empty());
  EXPECT_TRUE(find_cycles(model).empty());
}

TEST(LintModel, UpwardEdgeIsALayeringViolation) {
  auto entries = layered_tree();
  entries.push_back(
      {"src/sim/peek.hpp", "#pragma once\n#include \"grid/pool.hpp\"\n"});
  const ProjectModel model = build_model(entries);
  const Layering layering = parse_ok("[layers]\nutil\nsim\ngrid\n");
  const auto findings = check_layering(model, layering);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layering-violation");
  EXPECT_EQ(findings[0].file, "src/sim/peek.hpp");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintModel, SameLayerPeersMayNotIncludeEachOther) {
  const std::vector<FileEntry> entries = {
      {"src/grid/a.hpp", "#pragma once\n#include \"net/b.hpp\"\n"},
      {"src/net/b.hpp", "#pragma once\n"},
  };
  const ProjectModel model = build_model(entries);
  // grid and net as peers: the edge is rejected...
  EXPECT_TRUE(fired(check_layering(model, parse_ok("[layers]\ngrid net\n")),
                    "layering-violation"));
  // ...but fine when net sits strictly below grid.
  EXPECT_TRUE(
      check_layering(model, parse_ok("[layers]\nnet\ngrid\n")).empty());
}

TEST(LintModel, ConsumersMayIncludeEverythingButNeverBeIncluded) {
  const std::vector<FileEntry> entries = {
      {"src/grid/a.hpp", "#pragma once\n"},
      {"bench/common.hpp", "#pragma once\n#include \"grid/a.hpp\"\n"},
      {"src/grid/bad.hpp", "#pragma once\n#include \"bench/common.hpp\"\n"},
  };
  const ProjectModel model = build_model(entries);
  const Layering layering =
      parse_ok("[layers]\ngrid\n[consumers]\nbench\n");
  const auto findings = check_layering(model, layering);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/grid/bad.hpp");
  EXPECT_EQ(findings[0].rule, "layering-violation");
}

TEST(LintModel, SrcModuleMissingFromTheDagIsAFinding) {
  const std::vector<FileEntry> entries = {
      {"src/rogue/a.hpp", "#pragma once\n"},
  };
  const ProjectModel model = build_model(entries);
  EXPECT_TRUE(fired(check_layering(model, parse_ok("[layers]\ngrid\n")),
                    "layering-violation"));
}

TEST(LintModel, MalformedLayeringIniReportsErrors) {
  std::vector<std::string> errors;
  parse_layering("[layer\ngrid\n", &errors);
  EXPECT_FALSE(errors.empty());
  errors.clear();
  parse_layering("grid\n", &errors);  // entry outside any section
  EXPECT_FALSE(errors.empty());
  errors.clear();
  parse_layering("[layers]\ngrid\ngrid\n", &errors);  // duplicate module
  EXPECT_FALSE(errors.empty());
}

TEST(LintModel, ModuleCycleIsDetectedWithoutAHeaderLoop) {
  // grid -> boinc through one header, boinc -> grid through another: no
  // file-level loop exists, but the module graph has a cycle.
  const std::vector<FileEntry> entries = {
      {"src/grid/inv.hpp", "#pragma once\n#include \"boinc/cfg.hpp\"\n"},
      {"src/boinc/cfg.hpp", "#pragma once\n"},
      {"src/boinc/srv.hpp", "#pragma once\n#include \"grid/job.hpp\"\n"},
      {"src/grid/job.hpp", "#pragma once\n"},
  };
  const auto findings = find_cycles(build_model(entries));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layering-cycle");
  EXPECT_NE(findings[0].message.find("module include cycle"),
            std::string::npos);
}

TEST(LintModel, HeaderLoopIsDetectedAtFileGranularity) {
  const std::vector<FileEntry> entries = {
      {"src/sim/a.hpp", "#pragma once\n#include \"sim/b.hpp\"\n"},
      {"src/sim/b.hpp", "#pragma once\n#include \"sim/a.hpp\"\n"},
  };
  const auto findings = find_cycles(build_model(entries));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "layering-cycle");
  EXPECT_NE(findings[0].message.find("header include cycle"),
            std::string::npos);
}

// --- project model: cross-header alias + member resolution ----------------

TEST(LintModel, AliasChainAcrossHeadersReachesTheIndex) {
  // using A = unordered_map (header 1) -> using B = A (header 2)
  // -> typedef B C (header 3): all three names resolve to unordered.
  const std::vector<FileEntry> entries = {
      {"src/grid/h1.hpp",
       "#pragma once\nusing HostMap = std::unordered_map<int, int>;\n"},
      {"src/grid/h2.hpp",
       "#pragma once\n#include \"grid/h1.hpp\"\nusing Pool = HostMap;\n"},
      {"src/grid/h3.hpp",
       "#pragma once\n#include \"grid/h2.hpp\"\ntypedef Pool Cohort;\n"},
  };
  const ProjectModel model = build_model(entries);
  EXPECT_EQ(model.unordered_aliases.count("HostMap"), 1u);
  EXPECT_EQ(model.unordered_aliases.count("Pool"), 1u);
  EXPECT_EQ(model.unordered_aliases.count("Cohort"), 1u);
}

TEST(LintModel, MemberDeclaredViaAliasJoinsTheMemberIndex) {
  const std::vector<FileEntry> entries = {
      {"src/phylo/cache.hpp",
       "#pragma once\nusing Cache = std::unordered_map<int, int>;\n"
       "struct Engine { Cache matrix_cache_; };\n"},
  };
  const ProjectModel model = build_model(entries);
  EXPECT_EQ(model.unordered_members.count("matrix_cache_"), 1u);
}

TEST(LintModel, CrossTuIterationOverInjectedMemberFires) {
  // The member is declared in the header; the .cpp only iterates it. The
  // per-file pass alone cannot see the type — the injected index can.
  const std::vector<FileEntry> entries = {
      {"src/phylo/cache.hpp",
       "#pragma once\nstruct Engine {\n"
       "  // lattice-lint: allow(unordered-member) — lookups only\n"
       "  std::unordered_map<int, int> matrix_cache_;\n};\n"},
      {"src/phylo/cache.cpp",
       "#include \"phylo/cache.hpp\"\n"
       "void Engine::sweep() {\n"
       "  for (auto& kv : matrix_cache_) { drop(kv); }\n"
       "}\n"},
  };
  const ProjectModel model = build_model(entries);
  AnalysisOptions analysis;
  analysis.deterministic_modules = {"phylo"};
  analysis.audit_suppressions = false;
  const auto findings = analyze_project(entries, model, analysis);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iteration");
  EXPECT_EQ(findings[0].file, "src/phylo/cache.cpp");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintModel, DeclarationViaCrossHeaderAliasFiresUnorderedAlias) {
  const std::vector<FileEntry> entries = {
      {"src/grid/h1.hpp",
       "#pragma once\n"
       "// lattice-lint: allow(unordered-member) — index declares it\n"
       "using HostMap = std::unordered_map<int, int>;\n"},
      {"src/grid/user.cpp",
       "#include \"grid/h1.hpp\"\n"
       "HostMap live_hosts_;\n"},
  };
  const ProjectModel model = build_model(entries);
  AnalysisOptions analysis;
  analysis.deterministic_modules = {"grid"};
  analysis.audit_suppressions = false;
  const auto findings = analyze_project(entries, model, analysis);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-alias");
  EXPECT_EQ(findings[0].file, "src/grid/user.cpp");
  EXPECT_EQ(findings[0].line, 2);
}

// --- suppression-dead -----------------------------------------------------

TEST(LintDeadSuppression, SuppressionWithNoFindingIsDead) {
  const std::vector<FileEntry> entries = {
      {"src/sim/x.cpp",
       "// lattice-lint: allow(wall-clock) — used to read the clock here\n"
       "double t = simulated_now();\n"},
  };
  const ProjectModel model = build_model(entries);
  AnalysisOptions analysis;
  analysis.deterministic_modules = {"sim"};
  const auto findings = analyze_project(entries, model, analysis);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "suppression-dead");
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintDeadSuppression, LiveSuppressionIsNotDead) {
  const std::vector<FileEntry> entries = {
      {"src/sim/x.cpp",
       "// lattice-lint: allow(wall-clock) — obs measurement, never fed back\n"
       "double t = obs::Tracer::wall_now_us();\n"},
  };
  const ProjectModel model = build_model(entries);
  AnalysisOptions analysis;
  analysis.deterministic_modules = {"sim"};
  const auto findings = analyze_project(entries, model, analysis);
  EXPECT_TRUE(findings.empty());  // suppressed finding filtered, not dead
}

TEST(LintDeadSuppression, RawViewKeepsSuppressedFindingsFlagged) {
  const std::vector<FileEntry> entries = {
      {"src/sim/x.cpp",
       "long t = time(nullptr);  "
       "// lattice-lint: allow(wall-clock) — why\n"},
  };
  const ProjectModel model = build_model(entries);
  AnalysisOptions analysis;
  analysis.deterministic_modules = {"sim"};
  analysis.apply_suppressions = false;
  const auto findings = analyze_project(entries, model, analysis);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wall-clock");
  EXPECT_TRUE(findings[0].suppressed);
}

// --- JSON output ----------------------------------------------------------

TEST(LintJson, StableSchemaAndEscaping) {
  std::vector<Finding> findings;
  findings.push_back(Finding{"src/a.cpp", 3, "wall-clock",
                             "quote \" backslash \\ newline \n tab \t",
                             true});
  const std::string json = to_json(findings);
  EXPECT_EQ(json,
            "[\n"
            "  {\"file\": \"src/a.cpp\", \"line\": 3, "
            "\"rule\": \"wall-clock\", "
            "\"message\": \"quote \\\" backslash \\\\ newline \\n "
            "tab \\t\", \"suppressed\": true}\n"
            "]");
}

TEST(LintJson, EmptyFindingsIsAnEmptyArray) {
  EXPECT_EQ(to_json({}), "[]");
}

}  // namespace
}  // namespace lattice::lint
