// Tests for the lattice-lint rule engine: every rule must fire on a
// synthetic snippet, respect the allow() suppression syntax, and report
// stable `file:line rule-id` output. The engine itself is the tentpole of
// ISSUE 3 — these tests are what let the *next* PR refactor the linter
// without silently losing a rule.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lattice-lint/lint.hpp"

namespace lattice::lint {
namespace {

Options deterministic() {
  Options options;
  options.deterministic = true;
  return options;
}

std::vector<std::string> rules_fired(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

bool fired(const std::vector<Finding>& findings, std::string_view rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

// --- wall-clock -----------------------------------------------------------

TEST(LintWallClock, FiresOnSteadyClockInDeterministicCode) {
  const auto findings = lint_source(
      "src/sim/x.cpp",
      "void f() { auto t = std::chrono::steady_clock::now(); }\n",
      deterministic());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "wall-clock");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintWallClock, FiresOnCTimeAndWallNowUs) {
  const std::string src =
      "long a = time(nullptr);\n"
      "double b = obs::Tracer::wall_now_us();\n";
  const auto findings = lint_source("f.cpp", src, deterministic());
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_EQ(findings[1].rule, "wall-clock");
}

TEST(LintWallClock, DoesNotFireOnRuntimeIdentifiersOrNonDeterministicFiles) {
  // "runtime(" embeds "time(" behind a word character; "localtime" is only
  // matched as a whole call.
  const std::string src =
      "double x = job.reference_runtime();\n"
      "double y = estimate_runtime(job);\n";
  EXPECT_TRUE(lint_source("f.cpp", src, deterministic()).empty());
  // Same clock read, but the file is not deterministic (e.g. src/obs).
  Options obs;
  obs.deterministic = false;
  EXPECT_TRUE(lint_source("src/obs/trace.cpp",
                          "auto t = std::chrono::steady_clock::now();\n", obs)
                  .empty());
}

TEST(LintWallClock, IgnoresCommentsAndStrings) {
  const std::string src =
      "// std::chrono::steady_clock::now() in prose\n"
      "const char* s = \"time(\";\n"
      "/* rand() inside a block comment */\n";
  EXPECT_TRUE(lint_source("f.cpp", src, deterministic()).empty());
}

// --- ambient-rng ----------------------------------------------------------

TEST(LintAmbientRng, FiresOnRandSrandRandomDevice) {
  const std::string src =
      "int a = rand();\n"
      "srand(42);\n"
      "std::random_device rd;\n";
  const auto findings = lint_source("f.cpp", src, deterministic());
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "ambient-rng");
}

TEST(LintAmbientRng, DoesNotFireOnSeededRngOrSimilarNames) {
  const std::string src =
      "util::Rng rng(20260806);\n"
      "double u = rng.uniform();\n"
      "auto s = operand(x);\n";  // "rand(" behind a word char
  EXPECT_TRUE(lint_source("f.cpp", src, deterministic()).empty());
}

// --- unordered-member / unordered-iteration -------------------------------

TEST(LintUnordered, MemberDeclarationNeedsSuppression) {
  const auto findings = lint_source(
      "src/sim/x.hpp", "std::unordered_set<std::uint64_t> ids_;\n",
      deterministic());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-member");
  EXPECT_EQ(findings[0].line, 1);
}

TEST(LintUnordered, IncludeLineIsExemptFromMemberRule) {
  EXPECT_TRUE(lint_source("f.hpp", "#include <unordered_set>\n",
                          deterministic())
                  .empty());
}

TEST(LintUnordered, RangeForOverUnorderedVariableFires) {
  const std::string src =
      "std::unordered_map<int, int> cache_;  "
      "// lattice-lint: allow(unordered-member) — lookup only\n"
      "void f() {\n"
      "  for (const auto& kv : cache_) { use(kv); }\n"
      "}\n";
  const auto findings = lint_source("f.cpp", src, deterministic());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iteration");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintUnordered, IteratorWalkAndAliasDeclarationsFire) {
  const std::string src =
      "using Cache = std::unordered_map<int, int>;  "
      "// lattice-lint: allow(unordered-member) — alias for lookups\n"
      "Cache cache_;\n"
      "void f() {\n"
      "  for (auto it = cache_.begin(); it != cache_.end();) { ++it; }\n"
      "}\n";
  const auto findings = lint_source("f.cpp", src, deterministic());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iteration");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintUnordered, IterationOverOrderedContainersIsFine) {
  const std::string src =
      "std::map<int, int> sorted_;\n"
      "void f() {\n"
      "  for (const auto& kv : sorted_) { use(kv); }\n"
      "}\n";
  EXPECT_TRUE(lint_source("f.cpp", src, deterministic()).empty());
}

// --- metric-name ----------------------------------------------------------

TEST(LintMetricName, AcceptsCatalogGrammarEverywhere) {
  Options any;  // metric-name applies outside deterministic dirs too
  const std::string src =
      "auto& c = m.counter(\"boinc.results_reissued\", \"results\", "
      "\"reissues\");\n"
      "int t = tracer.track(\"sim.kernel\");\n"
      "tracer.async_begin(\"attempt\", \"grid.attempt\", id, now);\n";
  EXPECT_TRUE(lint_source("f.cpp", src, any).empty());
}

TEST(LintMetricName, RejectsOffGrammarNames) {
  Options any;
  const auto findings = lint_source(
      "f.cpp",
      "auto& c = m.counter(\"BadName\", \"u\", \"h\");\n"
      "auto& g = m.gauge(\"nodots\", \"u\", \"h\");\n"
      "auto& h = m.histogram(\"grid.Queue_Wait\", {1.0}, \"s\", \"h\");\n",
      any);
  ASSERT_EQ(findings.size(), 3u);
  for (const Finding& f : findings) EXPECT_EQ(f.rule, "metric-name");
}

TEST(LintMetricName, ChecksTraceCategoryNotSpanName) {
  Options any;
  // Span name "attempt" is legal (no grammar requirement); the *category*
  // carries the subsystem grammar.
  const auto findings = lint_source(
      "f.cpp", "tracer.async_end(\"attempt\", \"NotAGoodCategory\", 1, t);\n",
      any);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "metric-name");
}

TEST(LintMetricName, LookupHelpersAreNotRegistrationSites) {
  Options any;
  const std::string src =
      "const auto* c = m.find_counter(\"whatever name\");\n"
      "auto total = m.counter_total(\"Also Ignored\");\n";
  EXPECT_TRUE(lint_source("f.cpp", src, any).empty());
}

// --- suppressions ---------------------------------------------------------

TEST(LintSuppression, SameLineAllowSilencesTheRule) {
  const std::string src =
      "auto t = std::chrono::steady_clock::now();  "
      "// lattice-lint: allow(wall-clock) — benchmark helper, measured "
      "wall time is the payload\n";
  EXPECT_TRUE(lint_source("f.cpp", src, deterministic()).empty());
}

TEST(LintSuppression, PrecedingCommentLineCoversTheNextLine) {
  const std::string src =
      "// lattice-lint: allow(ambient-rng) — documented fallback seed\n"
      "std::random_device rd;\n";
  EXPECT_TRUE(lint_source("f.cpp", src, deterministic()).empty());
}

TEST(LintSuppression, DoesNotLeakToOtherLinesOrRules) {
  const std::string src =
      "// lattice-lint: allow(wall-clock) — reason\n"
      "std::random_device rd;\n";  // different rule: still fires
  const auto findings = lint_source("f.cpp", src, deterministic());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "ambient-rng");
}

TEST(LintSuppression, MissingReasonIsItselfAFinding) {
  const std::string src =
      "int a = rand();  // lattice-lint: allow(ambient-rng)\n";
  const auto findings = lint_source("f.cpp", src, deterministic());
  // Malformed suppression does not silence the rule, and is reported.
  EXPECT_TRUE(fired(findings, "suppression-syntax"));
  EXPECT_TRUE(fired(findings, "ambient-rng"));
}

TEST(LintSuppression, UnknownRuleIdIsReported) {
  const std::string src =
      "int x = 0;  // lattice-lint: allow(no-such-rule) — because\n";
  const auto findings = lint_source("f.cpp", src, deterministic());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "suppression-unknown-rule");
}

TEST(LintSuppression, CollectReturnsWellFormedInventory) {
  const std::string src =
      "int a = rand();  // lattice-lint: allow(ambient-rng) — golden seed\n"
      "int b = rand();  // lattice-lint: allow(ambient-rng)\n";  // malformed
  const auto inventory = collect_suppressions("src/sim/x.cpp", src);
  ASSERT_EQ(inventory.size(), 1u);
  EXPECT_EQ(inventory[0].file, "src/sim/x.cpp");
  EXPECT_EQ(inventory[0].line, 1);
  EXPECT_EQ(inventory[0].rule, "ambient-rng");
  EXPECT_EQ(inventory[0].reason, "golden seed");
}

// --- report format --------------------------------------------------------

TEST(LintReport, StableFileLineRuleFormat) {
  const auto findings = lint_source(
      "src/sim/simulation.cpp", "long t = time(nullptr);\n", deterministic());
  ASSERT_EQ(findings.size(), 1u);
  const std::string line = format(findings[0]);
  EXPECT_EQ(line.rfind("src/sim/simulation.cpp:1 wall-clock ", 0), 0u)
      << line;
}

TEST(LintReport, FindingsSortedByLineThenRule) {
  const std::string src =
      "std::random_device rd;\n"
      "long t = time(nullptr);\n";
  const auto findings = lint_source("f.cpp", src, deterministic());
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(rules_fired(findings),
            (std::vector<std::string>{"ambient-rng", "wall-clock"}));
  EXPECT_LT(findings[0].line, findings[1].line);
}

TEST(LintReport, RuleIdsAreStable) {
  const auto& ids = rule_ids();
  for (const char* expected :
       {"wall-clock", "ambient-rng", "unordered-member",
        "unordered-iteration", "metric-name", "header-self-contained"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), expected), ids.end())
        << expected;
  }
}

}  // namespace
}  // namespace lattice::lint
