// Tests for lattice::net, the deterministic transfer engine: the
// analytic fair-share oracle on a shared server pipe, epoch-recompute
// exactness under staggered joins and fault transitions, start-order and
// shard-count bit-identity, the zero-size fast path, cancellation, the
// class assignment, profile parsing, and the transfer-enabled volunteer
// pool end to end (twin-run determinism with and without calendar shards).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "boinc/server.hpp"
#include "net/model.hpp"
#include "sim/simulation.hpp"

namespace lattice::net {
namespace {

// One class whose access rate matches the server pipe, so the shared
// capacity is the binding constraint: N equal flows each run at C/N.
NetConfig shared_pipe_config(double mbps) {
  NetConfig config;
  config.enabled = true;
  config.server_down_mbps = mbps;
  config.server_up_mbps = mbps;
  LinkClassSpec spec;
  spec.name = "uniform";
  spec.down_mbps = mbps;
  spec.up_mbps = mbps;
  spec.latency_s = 0.0;
  spec.fraction = 1.0;
  config.classes = {spec};
  return config;
}

TEST(Net, EqualFlowsFinishAtAnalyticFairShareTime) {
  // C = 10 MB/s shared; 4 flows of 100 MB each run at C/4 and all finish
  // at exactly N*S/C = 40 s — the processor-sharing oracle.
  sim::Simulation sim;
  NetworkModel net(sim, shared_pipe_config(80.0));
  std::vector<double> done_at;
  for (int i = 0; i < 4; ++i) {
    net.start(Direction::kUp, 0, 100.0,
              [&sim, &done_at] { done_at.push_back(sim.now()); });
  }
  sim.run(1000.0);
  ASSERT_EQ(done_at.size(), 4u);
  for (const double when : done_at) {
    EXPECT_DOUBLE_EQ(when, 40.0);
  }
  EXPECT_EQ(net.transfers_completed(), 4u);
  EXPECT_DOUBLE_EQ(net.megabytes_moved(Direction::kUp), 400.0);
  EXPECT_EQ(net.active_transfers(), 0u);
}

TEST(Net, StaggeredJoinRecomputesPiecewiseRates) {
  // C = 10 MB/s. A (100 MB) starts alone at t=0 (rate 10). B (100 MB)
  // joins at t=5, when A has 50 MB left: both drop to 5 MB/s, A finishes
  // at t=15; B then runs alone at 10 MB/s and finishes at t=20. The
  // epoch recompute must reproduce the piecewise-constant integral
  // exactly, not approximately.
  sim::Simulation sim;
  NetworkModel net(sim, shared_pipe_config(80.0));
  double a_done = 0.0;
  double b_done = 0.0;
  net.start(Direction::kDown, 0, 100.0, [&] { a_done = sim.now(); });
  sim.at(5.0, [&] {
    net.start(Direction::kDown, 0, 100.0, [&] { b_done = sim.now(); });
  });
  sim.run(1000.0);
  EXPECT_DOUBLE_EQ(a_done, 15.0);
  EXPECT_DOUBLE_EQ(b_done, 20.0);
}

TEST(Net, SameEpochStartOrderIsUnobservable) {
  // Two flows of different sizes started in the same event, in both
  // orders: completion times must be bitwise identical — the engine keys
  // on (finish_key, id) virtual progress, never on arrival order.
  auto run_order = [](bool small_first) {
    sim::Simulation sim;
    NetworkModel net(sim, shared_pipe_config(80.0));
    double small_done = 0.0;
    double large_done = 0.0;
    const auto start_small = [&] {
      net.start(Direction::kUp, 0, 30.0, [&] { small_done = sim.now(); });
    };
    const auto start_large = [&] {
      net.start(Direction::kUp, 0, 70.0, [&] { large_done = sim.now(); });
    };
    if (small_first) {
      start_small();
      start_large();
    } else {
      start_large();
      start_small();
    }
    sim.run(1000.0);
    return std::make_pair(small_done, large_done);
  };
  const auto [s1, l1] = run_order(true);
  const auto [s2, l2] = run_order(false);
  // Analytic: both at 5 MB/s until small's 30 MB done (t=6); large then
  // finishes its remaining 40 MB alone at 10 MB/s (t=10).
  EXPECT_DOUBLE_EQ(s1, 6.0);
  EXPECT_DOUBLE_EQ(l1, 10.0);
  EXPECT_EQ(s1, s2);  // bitwise, not approximately
  EXPECT_EQ(l1, l2);
}

TEST(Net, ClassAccessRateBindsBeforeServerCapacity) {
  // A 1 MB/s class under an 80 MB/s server pipe: two flows do NOT contend
  // (2 x 1 < 80), each runs at the class rate.
  NetConfig config = shared_pipe_config(640.0);
  config.classes[0].down_mbps = 8.0;  // 1 MB/s
  sim::Simulation sim;
  NetworkModel net(sim, config);
  std::vector<double> done_at;
  net.start(Direction::kDown, 0, 10.0,
            [&] { done_at.push_back(sim.now()); });
  net.start(Direction::kDown, 0, 10.0,
            [&] { done_at.push_back(sim.now()); });
  sim.run(1000.0);
  ASSERT_EQ(done_at.size(), 2u);
  EXPECT_DOUBLE_EQ(done_at[0], 10.0);
  EXPECT_DOUBLE_EQ(done_at[1], 10.0);
}

TEST(Net, LatencyIsAddedAfterBytes) {
  NetConfig config = shared_pipe_config(80.0);
  config.classes[0].latency_s = 2.5;
  sim::Simulation sim;
  NetworkModel net(sim, config);
  double done = 0.0;
  net.start(Direction::kDown, 0, 10.0, [&] { done = sim.now(); });
  sim.run(1000.0);
  EXPECT_DOUBLE_EQ(done, 1.0 + 2.5);
}

TEST(Net, ZeroSizeTransferTakesTheLatencyOnlyFastPath) {
  NetConfig config = shared_pipe_config(80.0);
  config.classes[0].latency_s = 0.5;
  sim::Simulation sim;
  NetworkModel net(sim, config);
  double done = -1.0;
  const std::uint64_t id =
      net.start(Direction::kUp, 0, 0.0, [&] { done = sim.now(); });
  // Already completed: it never entered the contention engine, so there
  // is nothing to cancel (callers guard stale callbacks by result id).
  EXPECT_FALSE(net.cancel(id));
  EXPECT_EQ(net.active_transfers(), 0u);
  sim.run(10.0);
  EXPECT_DOUBLE_EQ(done, 0.5);
  EXPECT_EQ(net.transfers_started(), 1u);
  EXPECT_EQ(net.transfers_completed(), 1u);
}

TEST(Net, CancelReleasesShareToSurvivors) {
  // Two 100 MB flows at 5 MB/s each; cancelling one at t=5 (attained 25)
  // lets the survivor run at 10 MB/s: 75 MB remain -> finishes at 12.5 s.
  sim::Simulation sim;
  NetworkModel net(sim, shared_pipe_config(80.0));
  double done = 0.0;
  bool cancelled_fired = false;
  const std::uint64_t keep =
      net.start(Direction::kDown, 0, 100.0, [&] { done = sim.now(); });
  const std::uint64_t drop = net.start(Direction::kDown, 0, 100.0,
                                       [&] { cancelled_fired = true; });
  (void)keep;
  sim.at(5.0, [&] { EXPECT_TRUE(net.cancel(drop)); });
  sim.run(1000.0);
  EXPECT_DOUBLE_EQ(done, 12.5);
  EXPECT_FALSE(cancelled_fired);
  EXPECT_EQ(net.transfers_cancelled(), 1u);
  EXPECT_EQ(net.transfers_completed(), 1u);
}

TEST(Net, UplinkOutageStallsAndResumesExactly) {
  // 10 MB at 10 MB/s would finish at t=1; a [0.5, 2.0) uplink outage
  // freezes progress for 1.5 s, so it finishes at exactly 2.5 s.
  sim::Simulation sim;
  NetworkModel net(sim, shared_pipe_config(80.0));
  double done = 0.0;
  net.start(Direction::kUp, 0, 10.0, [&] { done = sim.now(); });
  sim.at(0.5, [&] { net.set_uplink_outage(true); });
  sim.at(2.0, [&] { net.set_uplink_outage(false); });
  sim.run(1000.0);
  EXPECT_DOUBLE_EQ(done, 2.5);
}

TEST(Net, BandwidthScaleWindowSlowsThenRestores) {
  // [link.<class>] windows: 10 MB at 1 MB/s class rate; scale 0.5 over
  // [2, 6) makes those 4 seconds move 2 MB instead of 4, pushing
  // completion from t=10 to t=12.
  NetConfig config = shared_pipe_config(640.0);
  config.classes[0].down_mbps = 8.0;
  sim::Simulation sim;
  NetworkModel net(sim, config);
  double done = 0.0;
  net.start(Direction::kDown, 0, 10.0, [&] { done = sim.now(); });
  sim.at(2.0, [&] { net.set_class_bandwidth_scale(0, 0.5); });
  sim.at(6.0, [&] { net.set_class_bandwidth_scale(0, 1.0); });
  sim.run(1000.0);
  EXPECT_DOUBLE_EQ(done, 12.0);
}

TEST(Net, ClassAssignmentIsDeterministicAndTracksFractions) {
  NetConfig config;
  config.enabled = true;
  LinkClassSpec fast;
  fast.name = "fast";
  fast.fraction = 0.75;
  LinkClassSpec slow;
  slow.name = "slow";
  slow.fraction = 0.25;
  config.classes = {fast, slow};
  std::size_t slow_count = 0;
  for (std::uint64_t key = 1; key <= 1000; ++key) {
    const std::uint32_t cls = config.class_of_host(key);
    EXPECT_EQ(cls, config.class_of_host(key));  // pure function of the key
    ASSERT_LT(cls, 2u);
    if (cls == 1) ++slow_count;
  }
  // The golden-ratio walk is a low-discrepancy sequence: over 1000 hosts
  // the 25% cohort lands within a percent of its target.
  EXPECT_NEAR(static_cast<double>(slow_count) / 1000.0, 0.25, 0.01);
}

TEST(Net, ExpectedStagingWeighsCohortsByFraction) {
  const NetConfig config = NetConfig::volunteer_default();
  sim::Simulation sim;
  NetworkModel net(sim, config);
  const double small = net.expected_staging_seconds(0.1, 0.5);
  const double large = net.expected_staging_seconds(100.0, 0.5);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);
  // The modem cohort (0.056 Mbps down, 10% of hosts) dominates the mean:
  // 100 MB takes ~14286 s on it, so the weighted mean must exceed 1400 s.
  EXPECT_GT(large, 1400.0);
}

TEST(Net, ProfileParsingValidates) {
  const std::string good =
      "[net]\nenabled = true\nserver_down_mbps = 100\n"
      "[class.dsl]\ndown_mbps = 8\nup_mbps = 1\nlatency_s = 0.05\n"
      "fraction = 1.0\n";
  const NetConfig config = net_profile_from_ini(good);
  EXPECT_TRUE(config.enabled);
  ASSERT_EQ(config.classes.size(), 1u);
  EXPECT_EQ(config.classes[0].name, "dsl");
  EXPECT_DOUBLE_EQ(config.classes[0].down_mbps, 8.0);

  EXPECT_THROW(net_profile_from_ini("[net]\nenabled = true\n"),
               std::runtime_error);  // enabled but classless
  EXPECT_THROW(
      net_profile_from_ini("[net]\nenabled = true\n"
                           "[class.x]\ndown_mbps = -1\n"),
      std::runtime_error);
  EXPECT_THROW(
      net_profile_from_ini("[net]\nenabled = true\n"
                           "[class.x]\nfraction = 0\n"),
      std::runtime_error);
  EXPECT_THROW(
      net_profile_from_ini("[net]\nenabled = true\n"
                           "[class.x]\nlatency_s = -0.1\n"),
      std::runtime_error);
}

// ---------------------------------------------------------------------
// The transfer-enabled volunteer pool end to end.

boinc::BoincPoolConfig net_pool(std::size_t hosts, std::size_t shards) {
  boinc::BoincPoolConfig config;
  config.hosts = hosts;
  config.shards = shards;
  config.mean_on_hours = 8.0;
  config.mean_off_hours = 16.0;
  config.mean_lifetime_days = 1e6;
  config.host_error_probability = 0.0;
  config.seed = 7;
  config.network = NetConfig::volunteer_default();
  return config;
}

grid::GridJob make_job(std::uint64_t id, double runtime, double input_mb,
                       double output_mb) {
  grid::GridJob job;
  job.id = id;
  job.true_reference_runtime = runtime;
  job.input_mb = input_mb;
  job.output_mb = output_mb;
  return job;
}

// Drive one full pool run and fingerprint it: per-job completion times
// plus every net counter. Any nondeterminism — across runs or shard
// counts — shows up here.
std::vector<std::pair<std::uint64_t, double>> run_pool(std::size_t shards,
                                                       std::uint64_t* moved
                                                       = nullptr) {
  sim::Simulation sim;
  boinc::BoincServer server(sim, "pool", net_pool(40, shards));
  std::vector<std::pair<std::uint64_t, double>> completions;
  server.set_completion_callback(
      [&](grid::GridJob& job, const grid::JobOutcome& outcome) {
        if (outcome.completed()) {
          completions.emplace_back(job.id, sim.now());
        }
      });
  std::vector<grid::GridJob> jobs;
  jobs.reserve(12);
  for (std::uint64_t i = 1; i <= 12; ++i) {
    jobs.push_back(make_job(i, 2.0 * 3600.0, 4.0 + static_cast<double>(i),
                            0.5));
  }
  for (auto& job : jobs) server.submit(job);
  sim.run(60.0 * 86400.0);
  EXPECT_EQ(completions.size(), 12u);
  const NetworkModel* net = server.network();
  EXPECT_NE(net, nullptr);
  EXPECT_GE(net->transfers_completed(), 24u);  // a down + an up per job
  EXPECT_GT(net->megabytes_moved(Direction::kDown), 0.0);
  if (moved != nullptr) {
    *moved = static_cast<std::uint64_t>(
        std::llround(net->megabytes_moved(Direction::kDown) * 1e6));
  }
  return completions;
}

TEST(NetPool, TwinRunsAreBitIdentical) {
  std::uint64_t moved_a = 0;
  std::uint64_t moved_b = 0;
  const auto a = run_pool(1, &moved_a);
  const auto b = run_pool(1, &moved_b);
  EXPECT_EQ(a, b);  // completion id+time streams, bitwise
  EXPECT_EQ(moved_a, moved_b);
}

TEST(NetPool, ShardCountIsUnobservable) {
  std::uint64_t moved_1 = 0;
  std::uint64_t moved_4 = 0;
  const auto one = run_pool(1, &moved_1);
  const auto four = run_pool(4, &moved_4);
  EXPECT_EQ(one, four);
  EXPECT_EQ(moved_1, moved_4);
}

TEST(NetPool, DisabledNetworkLeavesServerTransferFree) {
  sim::Simulation sim;
  boinc::BoincPoolConfig config = net_pool(10, 1);
  config.network = NetConfig{};  // disabled: the free-staging baseline
  boinc::BoincServer server(sim, "pool", config);
  EXPECT_EQ(server.network(), nullptr);
  int completed = 0;
  server.set_completion_callback(
      [&](grid::GridJob&, const grid::JobOutcome& outcome) {
        if (outcome.completed()) ++completed;
      });
  grid::GridJob job = make_job(1, 3600.0, 100.0, 1.0);
  server.submit(job);
  sim.run(30.0 * 86400.0);
  EXPECT_EQ(completed, 1);
}

}  // namespace
}  // namespace lattice::net
