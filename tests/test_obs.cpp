// Unit tests for lattice::obs — registry semantics, histogram bucket
// edges, trace JSON well-formedness — plus the determinism guard: enabling
// observability over a full grid scenario must not change any simulation
// outcome.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/lattice.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lattice {
namespace {

// --- MetricsRegistry semantics --------------------------------------------

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("x.events", "events", "help");
  obs::Counter& b = registry.counter("x.events", "events", "help");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);
  a.inc(3);
  b.inc();
  EXPECT_EQ(registry.find_counter("x.events")->value(), 4u);
}

TEST(MetricsRegistry, LabelsDistinguishInstances) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("grid.jobs", "jobs", "help", "pbs");
  obs::Counter& b = registry.counter("grid.jobs", "jobs", "help", "condor");
  EXPECT_NE(&a, &b);
  a.inc(2);
  b.inc(5);
  EXPECT_EQ(registry.counter_total("grid.jobs"), 7u);
  EXPECT_EQ(registry.find_counter("grid.jobs", "pbs")->value(), 2u);
  EXPECT_EQ(registry.find_counter("grid.jobs"), nullptr);
}

TEST(MetricsRegistry, KindMismatchReturnsSink) {
  obs::MetricsRegistry registry;
  registry.counter("x.thing", "events", "help");
  obs::Gauge& sink = registry.gauge("x.thing", "events", "help");
  sink.set(42.0);  // swallowed, must not corrupt the counter
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.find_gauge("x.thing"), nullptr);
  EXPECT_EQ(registry.find_counter("x.thing")->value(), 0u);
}

TEST(MetricsRegistry, NullRegistryIsDisabledAndRegistersNothing) {
  obs::MetricsRegistry& null = obs::MetricsRegistry::null();
  EXPECT_FALSE(null.enabled());
  obs::Counter& c = null.counter("x.whatever", "events", "help");
  c.inc(100);  // swallowed by the shared sink
  EXPECT_EQ(null.size(), 0u);
  EXPECT_EQ(null.find_counter("x.whatever"), nullptr);
  EXPECT_EQ(null.counter_total("x.whatever"), 0u);
  // Same shared sink instrument for every name.
  EXPECT_EQ(&c, &null.counter("y.other", "events", "help"));
}

TEST(MetricsRegistry, SnapshotListsEveryInstrument) {
  obs::MetricsRegistry registry;
  registry.counter("a.count", "events", "help").inc(7);
  registry.gauge("a.level", "jobs", "help").set(3.0);
  registry.histogram("a.wait", {1.0, 10.0}, "s", "help").observe(5.0);
  const std::string csv = registry.snapshot_csv();
  EXPECT_NE(csv.find("a.count"), std::string::npos);
  EXPECT_NE(csv.find("a.level"), std::string::npos);
  EXPECT_NE(csv.find("a.wait"), std::string::npos);
  const std::string json = registry.snapshot_json();
  EXPECT_NE(json.find("\"a.wait\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

// --- Histogram bucket edges -----------------------------------------------

TEST(Histogram, LeBucketEdges) {
  obs::Histogram h({0.0, 10.0});
  ASSERT_EQ(h.buckets(), 3u);
  h.observe(-5.0);  // <= 0            -> bucket 0
  h.observe(0.0);   // == bound        -> bucket 0 (le semantics)
  h.observe(0.5);   // <= 10           -> bucket 1
  h.observe(10.0);  // == bound        -> bucket 1
  h.observe(11.0);  // above last bound -> overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 16.5);
  EXPECT_DOUBLE_EQ(h.min(), -5.0);
  EXPECT_DOUBLE_EQ(h.max(), 11.0);
  EXPECT_DOUBLE_EQ(h.bucket_bound(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_bound(1), 10.0);
  EXPECT_TRUE(std::isinf(h.bucket_bound(2)));
}

TEST(Histogram, NoBoundsMeansSingleOverflowBucket) {
  obs::Histogram h(std::vector<double>{});
  h.observe(-1.0);
  h.observe(1e9);
  EXPECT_EQ(h.buckets(), 1u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.count(), 2u);
}

// --- Trace JSON well-formedness -------------------------------------------

// Minimal recursive-descent JSON validator: enough to prove the emitted
// trace is parseable without depending on an external JSON library.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  void check() {
    skip_ws();
    value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
  }

 private:
  void value() {
    if (pos_ >= text_.size()) fail("eof");
    switch (text_[pos_]) {
      case '{': object(); return;
      case '[': array(); return;
      case '"': string(); return;
      case 't': literal("true"); return;
      case 'f': literal("false"); return;
      case 'n': literal("null"); return;
      default: number(); return;
    }
  }
  void object() {
    expect('{');
    skip_ws();
    if (peek() == '}') { ++pos_; return; }
    while (true) {
      skip_ws();
      string();
      skip_ws();
      expect(':');
      skip_ws();
      value();
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return;
    }
  }
  void array() {
    expect('[');
    skip_ws();
    if (peek() == ']') { ++pos_; return; }
    while (true) {
      skip_ws();
      value();
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return;
    }
  }
  void string() {
    expect('"');
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char ch = text_[pos_++];
      if (ch == '"') return;
      if (static_cast<unsigned char>(ch) < 0x20) fail("raw control char");
      if (ch == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_.at(pos_++)))) {
              fail("bad \\u escape");
            }
          }
        } else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos) {
          fail("bad escape char");
        }
      }
    }
  }
  void number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected number");
  }
  void literal(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) != 0) fail("bad literal");
    pos_ += word.size();
  }
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error(why + " at byte " + std::to_string(pos_));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(Tracer, EmitsWellFormedChromeTraceJson) {
  obs::Tracer tracer;
  ASSERT_TRUE(tracer.enabled());
  const int track = tracer.track("sim.kernel");
  const int wall = tracer.wall_track("phylo.likelihood");
  tracer.complete(track, "span \"quoted\"", "cat", 1.0, 2.5,
                  {{"key", "value\\with\nnasties\t\x01"}});
  tracer.instant(track, "tick", "cat", 3.0);
  tracer.counter(track, "depth", 3.0, 17.0);
  tracer.async_begin("job", "lattice.job", 42, 0.0, {{"batch", "7"}});
  tracer.async_end("job", "lattice.job", 42, 9.0, {{"outcome", "completed"}});
  tracer.complete_wall(wall, "log_likelihood", "phylo.likelihood", 100.0,
                       250.0);
  EXPECT_EQ(tracer.events(), 6u);

  const std::string json = tracer.to_json();
  EXPECT_NO_THROW(JsonChecker(json).check()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Sim-time is exported in microseconds: 1.0 s -> 1000000.
  EXPECT_NE(json.find("\"ts\": 1000000"), std::string::npos);
  // Both clock domains announce themselves as process metadata.
  EXPECT_NE(json.find("sim-time"), std::string::npos);
  EXPECT_NE(json.find("wall-clock"), std::string::npos);
}

TEST(Tracer, NullTracerIsDisabledAndRecordsNothing) {
  obs::Tracer& null = obs::Tracer::null();
  EXPECT_FALSE(null.enabled());
  const int track = null.track("x");
  null.complete(track, "a", "b", 0.0, 1.0);
  null.instant(track, "a", "b", 0.0);
  null.async_begin("a", "b", 1, 0.0);
  EXPECT_EQ(null.events(), 0u);
  EXPECT_NO_THROW(JsonChecker(null.to_json()).check());
}

// --- Determinism guard ----------------------------------------------------

struct ScenarioResult {
  std::uint64_t events_fired = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed_attempts = 0;
  double total_turnaround = 0.0;
  double wasted_cpu = 0.0;
  double last_completion = 0.0;
};

// A small mixed grid: one cluster, one preempting Condor pool, one BOINC
// pool, 30 jobs. Observability must be a pure observer: the run's event
// count and every outcome must be bit-identical with it on or off.
ScenarioResult run_scenario(bool observe, obs::MetricsRegistry* metrics,
                            obs::Tracer* tracer) {
  core::LatticeConfig config;
  config.scheduler.mode = core::SchedulingMode::kEstimateAware;
  config.seed = 11;
  core::LatticeSystem system(config);
  if (observe) system.enable_observability(*metrics, *tracer);

  grid::BatchQueueResource::Config cluster;
  cluster.nodes = 4;
  cluster.cores_per_node = 2;
  system.add_cluster("pbs", cluster);
  grid::CondorPool::Config condor;
  condor.machines = 12;
  condor.mean_idle_hours = 2.0;
  condor.mean_busy_hours = 2.0;
  condor.seed = 5;
  system.add_condor_pool("condor", condor);
  boinc::BoincPoolConfig pool;
  pool.hosts = 40;
  pool.seed = 13;
  system.add_boinc_pool("boinc", pool);
  system.calibrate_speeds();

  util::Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    core::GarliFeatures features = core::random_features(rng);
    system.submit_job_with_runtime(features, rng.uniform(600.0, 4.0 * 3600.0));
  }
  system.run_until_drained(30.0 * 86400.0);

  ScenarioResult result;
  result.events_fired = system.simulation().events_fired();
  result.completed = system.metrics().completed;
  result.failed_attempts = system.metrics().failed_attempts;
  result.total_turnaround = system.metrics().total_turnaround_seconds;
  result.wasted_cpu = system.metrics().wasted_cpu_seconds;
  result.last_completion = system.metrics().last_completion;
  return result;
}

TEST(DeterminismGuard, ObservabilityDoesNotChangeTheSimulation) {
  const ScenarioResult off = run_scenario(false, nullptr, nullptr);
  obs::MetricsRegistry metrics;
  obs::Tracer tracer;
  const ScenarioResult on = run_scenario(true, &metrics, &tracer);

  EXPECT_EQ(off.events_fired, on.events_fired);
  EXPECT_EQ(off.completed, on.completed);
  EXPECT_EQ(off.failed_attempts, on.failed_attempts);
  // Doubles compared exactly: observation must not perturb a single event.
  EXPECT_EQ(off.total_turnaround, on.total_turnaround);
  EXPECT_EQ(off.wasted_cpu, on.wasted_cpu);
  EXPECT_EQ(off.last_completion, on.last_completion);

  // And the mirror agrees with the system's own books.
  EXPECT_EQ(metrics.counter_total("lattice.jobs_submitted"), 30u);
  EXPECT_EQ(metrics.counter_total("lattice.jobs_completed"), on.completed);
  EXPECT_EQ(metrics.counter_total("lattice.failed_attempts"),
            on.failed_attempts);
  EXPECT_EQ(metrics.counter_total("sim.events_fired"), on.events_fired);
  EXPECT_GT(metrics.counter_total("sched.decisions"), 0u);
  EXPECT_GT(tracer.events(), 0u);
  EXPECT_NO_THROW(JsonChecker(tracer.to_json()).check());
}

}  // namespace
}  // namespace lattice
