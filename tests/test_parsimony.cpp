// Tests for Fitch parsimony, stepwise-addition starting trees, and
// information-criterion model selection.
#include <gtest/gtest.h>

#include "phylo/garli.hpp"
#include "phylo/likelihood.hpp"
#include "phylo/model_select.hpp"
#include "phylo/parsimony.hpp"
#include "phylo/simulate.hpp"
#include "util/rng.hpp"

namespace lattice::phylo {
namespace {

std::vector<std::string> names4{"A", "B", "C", "D"};

// ---------------------------------------------------------------------------
// Fitch parsimony

TEST(Parsimony, HandComputedFourTaxa) {
  // Site 1: A A C C -> grouping (A,B)(C,D) costs 1 change; site 2 constant.
  Alignment alignment(DataType::kNucleotide, 2);
  alignment.add_taxon("A", {0, 2});
  alignment.add_taxon("B", {0, 2});
  alignment.add_taxon("C", {1, 2});
  alignment.add_taxon("D", {1, 2});
  const PatternizedAlignment patterns(alignment);
  const Tree grouped = Tree::parse_newick("((A,B),(C,D));", names4);
  EXPECT_DOUBLE_EQ(parsimony_score(grouped, patterns), 1.0);
  // The wrong grouping needs two changes for site 1.
  const Tree split = Tree::parse_newick("((A,C),(B,D));", names4);
  EXPECT_DOUBLE_EQ(parsimony_score(split, patterns), 2.0);
}

TEST(Parsimony, ConstantAlignmentScoresZero) {
  Alignment alignment(DataType::kNucleotide, 3);
  for (const char* name : {"A", "B", "C", "D"}) {
    alignment.add_taxon(name, {1, 1, 1});
  }
  const PatternizedAlignment patterns(alignment);
  util::Rng rng(1);
  const Tree tree = Tree::random(4, rng);
  EXPECT_DOUBLE_EQ(parsimony_score(tree, patterns), 0.0);
}

TEST(Parsimony, MissingDataCostsNothing) {
  Alignment alignment(DataType::kNucleotide, 1);
  alignment.add_taxon("A", {0});
  alignment.add_taxon("B", {kMissing});
  alignment.add_taxon("C", {0});
  alignment.add_taxon("D", {kMissing});
  const PatternizedAlignment patterns(alignment);
  const Tree tree = Tree::parse_newick("((A,B),(C,D));", names4);
  EXPECT_DOUBLE_EQ(parsimony_score(tree, patterns), 0.0);
}

TEST(Parsimony, WeightsRespected) {
  // Two identical informative columns compress to one pattern of weight 2.
  Alignment alignment(DataType::kNucleotide, 2);
  alignment.add_taxon("A", {0, 0});
  alignment.add_taxon("B", {0, 0});
  alignment.add_taxon("C", {3, 3});
  alignment.add_taxon("D", {3, 3});
  const PatternizedAlignment patterns(alignment);
  ASSERT_EQ(patterns.n_patterns(), 1u);
  const Tree tree = Tree::parse_newick("((A,B),(C,D));", names4);
  EXPECT_DOUBLE_EQ(parsimony_score(tree, patterns), 2.0);
}

TEST(Parsimony, TrueTreeScoresBetterOnCleanData) {
  util::Rng rng(2);
  const auto dataset = simulate_dataset(10, 500, ModelSpec{}, rng, 0.1);
  const PatternizedAlignment patterns(dataset.alignment);
  const double true_score = parsimony_score(dataset.tree, patterns);
  double best_random = 1e18;
  for (int i = 0; i < 10; ++i) {
    best_random = std::min(
        best_random,
        parsimony_score(Tree::random(10, rng), patterns));
  }
  EXPECT_LT(true_score, best_random);
}

TEST(Parsimony, MismatchedTaxaThrow) {
  util::Rng rng(3);
  const auto dataset = simulate_dataset(5, 50, ModelSpec{}, rng);
  const PatternizedAlignment patterns(dataset.alignment);
  const Tree wrong = Tree::random(7, rng);
  EXPECT_THROW(parsimony_score(wrong, patterns), std::invalid_argument);
}

TEST(Parsimony, InformativePatternCount) {
  Alignment alignment(DataType::kNucleotide, 4);
  // col0: informative (two states, twice each); col1: singleton (not);
  // col2: constant (not); col3: informative.
  alignment.add_taxon("A", {0, 0, 2, 1});
  alignment.add_taxon("B", {0, 1, 2, 1});
  alignment.add_taxon("C", {3, 0, 2, 3});
  alignment.add_taxon("D", {3, 0, 2, 3});
  const PatternizedAlignment patterns(alignment);
  EXPECT_EQ(parsimony_informative_patterns(patterns), 2u);
}

// ---------------------------------------------------------------------------
// Stepwise addition

TEST(Stepwise, ProducesValidTreeOverAllTaxa) {
  util::Rng rng(4);
  for (std::size_t n : {2u, 4u, 8u, 15u}) {
    const auto dataset = simulate_dataset(n, 120, ModelSpec{}, rng, 0.1);
    const PatternizedAlignment patterns(dataset.alignment);
    util::Rng step_rng(7);
    const Tree tree = stepwise_addition_tree(patterns, step_rng);
    EXPECT_EQ(tree.n_leaves(), n);
    EXPECT_TRUE(tree.check_valid());
  }
}

TEST(Stepwise, BeatsRandomTreesOnParsimony) {
  util::Rng rng(5);
  const auto dataset = simulate_dataset(12, 400, ModelSpec{}, rng, 0.12);
  const PatternizedAlignment patterns(dataset.alignment);
  util::Rng step_rng(9);
  const Tree stepwise = stepwise_addition_tree(patterns, step_rng);
  const double step_score = parsimony_score(stepwise, patterns);
  for (int i = 0; i < 5; ++i) {
    EXPECT_LE(step_score,
              parsimony_score(Tree::random(12, rng), patterns));
  }
}

TEST(Stepwise, MuchCloserToTruthThanRandomTrees) {
  // Exponential branch lengths leave some splits nearly signal-free, so
  // exact recovery is not expected even from clean data; the property
  // that matters is that stepwise addition starts the GA far closer to
  // the truth than a random topology does.
  util::Rng rng(6);
  const auto dataset = simulate_dataset(10, 1000, ModelSpec{}, rng, 0.1);
  const PatternizedAlignment patterns(dataset.alignment);
  util::Rng step_rng(3);
  const Tree stepwise = stepwise_addition_tree(patterns, step_rng);
  const std::size_t step_rf =
      Tree::robinson_foulds(stepwise, dataset.tree);
  double random_rf_total = 0.0;
  for (int i = 0; i < 10; ++i) {
    random_rf_total += static_cast<double>(
        Tree::robinson_foulds(Tree::random(10, rng), dataset.tree));
  }
  EXPECT_LT(static_cast<double>(step_rf), 0.8 * random_rf_total / 10.0);
}

TEST(Stepwise, AdditionOrderVariesWithSeed) {
  util::Rng rng(7);
  const auto dataset = simulate_dataset(12, 100, ModelSpec{}, rng, 0.4);
  const PatternizedAlignment patterns(dataset.alignment);
  util::Rng a(1);
  util::Rng b(2);
  const Tree ta = stepwise_addition_tree(patterns, a);
  const Tree tb = stepwise_addition_tree(patterns, b);
  // Noisy short data: different addition orders usually give different
  // trees (not guaranteed, but with this seed pair it holds).
  EXPECT_GT(Tree::robinson_foulds(ta, tb), 0u);
}

TEST(Stepwise, GarliJobStartTopologyConfigRoundTrip) {
  GarliJob job;
  EXPECT_TRUE(job.stepwise_start());  // GARLI's default
  EXPECT_EQ(GarliJob::from_config(job.to_config()).start_topology,
            GarliJob::StartTopology::kStepwise);
  job.start_topology = GarliJob::StartTopology::kRandom;
  EXPECT_EQ(GarliJob::from_config(job.to_config()).start_topology,
            GarliJob::StartTopology::kRandom);
  job.start_topology = GarliJob::StartTopology::kNeighborJoining;
  EXPECT_EQ(GarliJob::from_config(job.to_config()).start_topology,
            GarliJob::StartTopology::kNeighborJoining);
  EXPECT_THROW(
      GarliJob::from_config("[general]\nstarttopology = downward\n"),
      std::runtime_error);
}

TEST(Stepwise, NjStartAlsoBeatsRandomStart) {
  util::Rng rng(16);
  const auto dataset = simulate_dataset(9, 600, ModelSpec{}, rng, 0.12);
  GarliJob job;
  job.genthresh = 10;
  job.max_generations = 20;
  job.seed = 5;
  job.start_topology = GarliJob::StartTopology::kNeighborJoining;
  const auto with_nj = run_garli_job(job, dataset.alignment);
  job.start_topology = GarliJob::StartTopology::kRandom;
  const auto with_random = run_garli_job(job, dataset.alignment);
  EXPECT_GT(with_nj.replicates[0].best_log_likelihood,
            with_random.replicates[0].best_log_likelihood);
}

TEST(Stepwise, ImprovesGaSearchStart) {
  util::Rng rng(8);
  const auto dataset = simulate_dataset(9, 600, ModelSpec{}, rng, 0.12);
  GarliJob job;
  job.genthresh = 10;  // almost no search: the start tree dominates
  job.max_generations = 20;
  job.seed = 5;
  const auto with_stepwise = run_garli_job(job, dataset.alignment);
  job.start_topology = GarliJob::StartTopology::kRandom;
  const auto with_random = run_garli_job(job, dataset.alignment);
  EXPECT_GT(
      with_stepwise.replicates[0].best_log_likelihood,
      with_random.replicates[0].best_log_likelihood);
}

// ---------------------------------------------------------------------------
// Model selection

TEST(ModelSelection, RecoversGammaWhenDataIsGamma) {
  util::Rng rng(9);
  ModelSpec truth;
  truth.nuc_model = NucModel::kHKY85;
  truth.kappa = 4.0;
  truth.rate_het = RateHet::kGamma;
  truth.gamma_alpha = 0.4;
  const auto dataset = simulate_dataset(8, 1500, truth, rng, 0.12);

  std::vector<ModelSpec> candidates;
  ModelSpec flat;
  flat.nuc_model = NucModel::kHKY85;
  candidates.push_back(flat);
  ModelSpec gamma = flat;
  gamma.rate_het = RateHet::kGamma;
  candidates.push_back(gamma);

  const auto fits =
      compare_models(dataset.alignment, dataset.tree, candidates);
  ASSERT_EQ(fits.size(), 2u);
  EXPECT_EQ(fits[0].spec.rate_het, RateHet::kGamma);
  EXPECT_GT(fits[0].log_likelihood, fits[1].log_likelihood);
  EXPECT_LT(fits[0].aic, fits[1].aic);
}

TEST(ModelSelection, PenalizesUselessParameters) {
  // Data simulated under JC69: GTR fits no better and pays its parameter
  // penalty under BIC.
  util::Rng rng(10);
  ModelSpec truth;
  truth.nuc_model = NucModel::kJC69;
  const auto dataset = simulate_dataset(8, 1500, truth, rng, 0.12);
  std::vector<ModelSpec> candidates;
  candidates.push_back(truth);
  ModelSpec gtr;
  gtr.nuc_model = NucModel::kGTR;
  candidates.push_back(gtr);
  const auto fits =
      compare_models(dataset.alignment, dataset.tree, candidates);
  const auto& jc = fits[0].spec.nuc_model == NucModel::kJC69 ? fits[0]
                                                             : fits[1];
  const auto& gtr_fit = fits[0].spec.nuc_model == NucModel::kGTR ? fits[0]
                                                                 : fits[1];
  EXPECT_LT(jc.bic, gtr_fit.bic);
  EXPECT_LT(jc.free_parameters, gtr_fit.free_parameters);
}

TEST(ModelSelection, StandardLadderShape) {
  const auto ladder = standard_nucleotide_candidates();
  EXPECT_EQ(ladder.size(), 9u);
  // Errors: empty candidates, mismatched data type.
  util::Rng rng(11);
  const auto dataset = simulate_dataset(5, 100, ModelSpec{}, rng);
  EXPECT_THROW(compare_models(dataset.alignment, dataset.tree, {}),
               std::invalid_argument);
  ModelSpec aa;
  aa.data_type = DataType::kAminoAcid;
  std::vector<ModelSpec> bad{aa};
  EXPECT_THROW(compare_models(dataset.alignment, dataset.tree, bad),
               std::invalid_argument);
}

TEST(ModelSelection, ChiSquareSurvivalFunction) {
  // Known values: P(X > 3.841 | 1 dof) ~ 0.05; P(X > 5.991 | 2 dof) ~ 0.05.
  EXPECT_NEAR(chi_square_sf(3.841, 1), 0.05, 0.001);
  EXPECT_NEAR(chi_square_sf(5.991, 2), 0.05, 0.001);
  EXPECT_DOUBLE_EQ(chi_square_sf(0.0, 3), 1.0);
  EXPECT_LT(chi_square_sf(100.0, 1), 1e-12);
  EXPECT_THROW(chi_square_sf(1.0, 0), std::invalid_argument);
}

TEST(ModelSelection, LikelihoodRatioTestDetectsRateHeterogeneity) {
  util::Rng rng(14);
  ModelSpec truth;
  truth.nuc_model = NucModel::kHKY85;
  truth.rate_het = RateHet::kGamma;
  truth.gamma_alpha = 0.3;
  const auto dataset = simulate_dataset(8, 1200, truth, rng, 0.12);
  ModelSpec flat = truth;
  flat.rate_het = RateHet::kNone;
  std::vector<ModelSpec> candidates{flat, truth};
  const auto fits =
      compare_models(dataset.alignment, dataset.tree, candidates);
  const ModelFit& nested =
      fits[0].spec.rate_het == RateHet::kNone ? fits[0] : fits[1];
  const ModelFit& general =
      fits[0].spec.rate_het == RateHet::kGamma ? fits[0] : fits[1];
  // Strong heterogeneity in the data: decisively rejected.
  EXPECT_LT(likelihood_ratio_test(nested, general), 1e-6);
  // Misuse errors.
  EXPECT_THROW(likelihood_ratio_test(general, nested),
               std::invalid_argument);
}

TEST(ModelSelection, LrtAcceptsNullWhenDataIsSimple) {
  util::Rng rng(15);
  ModelSpec truth;
  truth.nuc_model = NucModel::kHKY85;
  truth.kappa = 3.0;
  truth.rate_het = RateHet::kNone;
  const auto dataset = simulate_dataset(8, 800, truth, rng, 0.12);
  ModelSpec gamma = truth;
  gamma.rate_het = RateHet::kGamma;
  std::vector<ModelSpec> candidates{truth, gamma};
  const auto fits =
      compare_models(dataset.alignment, dataset.tree, candidates);
  const ModelFit& nested =
      fits[0].spec.rate_het == RateHet::kNone ? fits[0] : fits[1];
  const ModelFit& general =
      fits[0].spec.rate_het == RateHet::kGamma ? fits[0] : fits[1];
  // Equal-rates data: adding gamma should not be significant at 1%.
  EXPECT_GT(likelihood_ratio_test(nested, general), 0.01);
}

TEST(ModelSelection, AicOrderingAndValues) {
  util::Rng rng(12);
  const auto dataset = simulate_dataset(6, 400, ModelSpec{}, rng, 0.1);
  std::vector<ModelSpec> candidates{ModelSpec{}};
  const auto fits =
      compare_models(dataset.alignment, dataset.tree, candidates);
  const ModelFit& fit = fits[0];
  const auto k = static_cast<double>(fit.free_parameters);
  EXPECT_DOUBLE_EQ(fit.aic, 2.0 * k - 2.0 * fit.log_likelihood);
  EXPECT_GT(fit.aicc, fit.aic);
  EXPECT_GT(fit.bic, fit.aic);  // log(400) > 2
}

}  // namespace
}  // namespace lattice::phylo
