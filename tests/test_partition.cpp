// Tests for partitioned analyses: dataset validation, rate normalization,
// additive likelihoods, rate-multiplier semantics, and the joint optimizer
// recovering per-partition structure.
#include <gtest/gtest.h>

#include <cmath>

#include "phylo/partition.hpp"
#include "phylo/simulate.hpp"
#include "util/rng.hpp"

namespace lattice::phylo {
namespace {

PartitionBlock make_block(const std::string& name, const Alignment& alignment,
                          const ModelSpec& spec, double rate = 1.0) {
  return PartitionBlock{name, alignment, spec, rate};
}

struct Fixture {
  util::Rng rng{42};
  Tree tree;
  Alignment fast_genes;
  Alignment slow_genes;
  ModelSpec nuc;

  Fixture()
      : tree(Tree::random(8, rng, 0.1)),
        fast_genes(DataType::kNucleotide, 0),
        slow_genes(DataType::kNucleotide, 0) {
    const SubstitutionModel model(nuc);
    // "Fast" partition: branch lengths effectively 3x.
    Tree fast_tree = tree;
    for (std::size_t i = 0; i < fast_tree.n_nodes(); ++i) {
      if (static_cast<int>(i) != fast_tree.root()) {
        fast_tree.set_branch_length(
            static_cast<int>(i),
            fast_tree.branch_length(static_cast<int>(i)) * 3.0);
      }
    }
    fast_genes = simulate_alignment(fast_tree, model, 400, rng);
    slow_genes = simulate_alignment(tree, model, 400, rng);
  }
};

TEST(Partition, ValidatesConsistency) {
  Fixture fx;
  // Good: two compatible blocks.
  PartitionedDataset ok({make_block("a", fx.fast_genes, fx.nuc),
                         make_block("b", fx.slow_genes, fx.nuc)});
  EXPECT_EQ(ok.n_partitions(), 2u);
  EXPECT_EQ(ok.n_taxa(), 8u);
  EXPECT_EQ(ok.n_sites(), 800u);

  // Empty.
  EXPECT_THROW(PartitionedDataset({}), std::invalid_argument);

  // Model/data type mismatch.
  ModelSpec aa;
  aa.data_type = DataType::kAminoAcid;
  EXPECT_THROW(
      PartitionedDataset({make_block("bad", fx.fast_genes, aa)}),
      std::invalid_argument);

  // Non-positive rate.
  EXPECT_THROW(PartitionedDataset(
                   {make_block("bad", fx.fast_genes, fx.nuc, 0.0)}),
               std::invalid_argument);

  // Mismatched taxa.
  util::Rng rng(7);
  const auto other = simulate_dataset(6, 50, fx.nuc, rng);
  EXPECT_THROW(
      PartitionedDataset({make_block("a", fx.fast_genes, fx.nuc),
                          make_block("b", other.alignment, fx.nuc)}),
      std::invalid_argument);
}

TEST(Partition, RateNormalizationIsSiteWeighted) {
  Fixture fx;
  PartitionedDataset data({make_block("a", fx.fast_genes, fx.nuc, 2.0),
                           make_block("b", fx.slow_genes, fx.nuc, 1.0)});
  // Equal site counts: mean (2+1)/2 = 1.5 -> rates 4/3 and 2/3.
  EXPECT_NEAR(data.block(0).rate, 2.0 / 1.5, 1e-12);
  EXPECT_NEAR(data.block(1).rate, 1.0 / 1.5, 1e-12);
  double weighted = 0.0;
  for (std::size_t p = 0; p < 2; ++p) {
    weighted += data.block(p).rate * 400.0;
  }
  EXPECT_NEAR(weighted / 800.0, 1.0, 1e-12);
}

TEST(Partition, LikelihoodIsSumOfBlocks) {
  Fixture fx;
  PartitionedDataset data({make_block("a", fx.fast_genes, fx.nuc),
                           make_block("b", fx.slow_genes, fx.nuc)});
  PartitionedLikelihoodEngine engine(data);
  const double joint = engine.log_likelihood(fx.tree);

  const SubstitutionModel model(fx.nuc);
  PatternizedAlignment pa(fx.fast_genes);
  PatternizedAlignment pb(fx.slow_genes);
  LikelihoodEngine ea(pa);
  LikelihoodEngine eb(pb);
  EXPECT_NEAR(joint,
              ea.log_likelihood(fx.tree, model) +
                  eb.log_likelihood(fx.tree, model),
              1e-9);
}

TEST(Partition, RateMultiplierScalesBranches) {
  Fixture fx;
  PartitionedDataset one({make_block("a", fx.fast_genes, fx.nuc)});
  // A single partition always normalizes to rate 1.
  EXPECT_DOUBLE_EQ(one.block(0).rate, 1.0);

  // Two copies of the same block with asymmetric rates: the scaled-tree
  // likelihood must equal evaluating a manually scaled tree.
  PartitionedDataset data({make_block("a", fx.fast_genes, fx.nuc, 2.0),
                           make_block("b", fx.fast_genes, fx.nuc, 1.0)});
  PartitionedLikelihoodEngine engine(data);
  const double joint = engine.log_likelihood(fx.tree);

  const SubstitutionModel model(fx.nuc);
  PatternizedAlignment patterns(fx.fast_genes);
  LikelihoodEngine single(patterns);
  double expected = 0.0;
  for (std::size_t p = 0; p < 2; ++p) {
    Tree scaled = fx.tree;
    for (std::size_t i = 0; i < scaled.n_nodes(); ++i) {
      if (static_cast<int>(i) != scaled.root()) {
        scaled.set_branch_length(
            static_cast<int>(i), scaled.branch_length(static_cast<int>(i)) *
                                     data.block(p).rate);
      }
    }
    expected += single.log_likelihood(scaled, model);
  }
  EXPECT_NEAR(joint, expected, 1e-9);
}

TEST(Partition, OptimizerRecoversRateAsymmetry) {
  Fixture fx;
  // Truth: partition "fast" evolved 3x faster than "slow".
  PartitionedDataset data({make_block("fast", fx.fast_genes, fx.nuc),
                           make_block("slow", fx.slow_genes, fx.nuc)});
  PartitionedLikelihoodEngine engine(data);
  Tree tree = fx.tree;
  const double before = engine.log_likelihood(tree);
  const double after = optimize_partitioned(engine, data, tree, 2);
  EXPECT_GT(after, before);
  // The fast partition should get a substantially higher rate multiplier.
  EXPECT_GT(data.block(0).rate, 1.5 * data.block(1).rate);
}

TEST(Partition, MixedDataTypesSupported) {
  util::Rng rng(11);
  ModelSpec nuc;
  const auto base = simulate_dataset(6, 200, nuc, rng, 0.1);
  ModelSpec aa;
  aa.data_type = DataType::kAminoAcid;
  const SubstitutionModel aa_model(aa);
  std::vector<std::string> names;
  for (std::size_t t = 0; t < 6; ++t) {
    names.push_back(base.alignment.taxon_name(t));
  }
  const Alignment protein =
      simulate_alignment(base.tree, aa_model, 120, rng, names);

  PartitionedDataset data({make_block("dna", base.alignment, nuc),
                           make_block("protein", protein, aa)});
  PartitionedLikelihoodEngine engine(data);
  const double lnl = engine.log_likelihood(base.tree);
  EXPECT_TRUE(std::isfinite(lnl));
  EXPECT_LT(lnl, 0.0);
}

TEST(Partition, PerPartitionModelParameterOptimization) {
  util::Rng rng(13);
  ModelSpec truth_a;
  truth_a.nuc_model = NucModel::kHKY85;
  truth_a.kappa = 8.0;
  ModelSpec truth_b = truth_a;
  truth_b.kappa = 1.0;
  const auto base = simulate_dataset(6, 800, truth_a, rng, 0.1);
  const SubstitutionModel model_b(truth_b);
  std::vector<std::string> names;
  for (std::size_t t = 0; t < 6; ++t) {
    names.push_back(base.alignment.taxon_name(t));
  }
  const Alignment second =
      simulate_alignment(base.tree, model_b, 800, rng, names);

  ModelSpec guess = truth_a;
  guess.kappa = 3.0;
  PartitionedDataset data({make_block("a", base.alignment, guess),
                           make_block("b", second, guess)});
  PartitionedLikelihoodEngine engine(data);
  Tree tree = base.tree;
  optimize_partitioned(engine, data, tree, 2);
  // Each partition's kappa should move toward its own truth.
  EXPECT_GT(data.block(0).model.kappa, 4.0);
  EXPECT_LT(data.block(1).model.kappa, 2.5);
}

}  // namespace
}  // namespace lattice::phylo
