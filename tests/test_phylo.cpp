// Tests for the phylogenetics engine: alphabets and the genetic code,
// alignment parsing and pattern compression, tree structure and moves,
// eigen math, substitution models (analytic checks against closed forms),
// the pruning likelihood, optimization, simulation round trips, and the
// genetic-algorithm search with checkpoint/restore.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "phylo/alignment.hpp"
#include "phylo/datatype.hpp"
#include "phylo/garli.hpp"
#include "phylo/ga.hpp"
#include "phylo/likelihood.hpp"
#include "phylo/linalg.hpp"
#include "phylo/model.hpp"
#include "phylo/optimize.hpp"
#include "phylo/simulate.hpp"
#include "phylo/tree.hpp"
#include "util/rng.hpp"

namespace lattice::phylo {
namespace {

std::vector<std::string> names4{"A", "B", "C", "D"};

// ---------------------------------------------------------------------------
// Alphabets / genetic code

TEST(DataTypes, StateCounts) {
  EXPECT_EQ(state_count(DataType::kNucleotide), 4u);
  EXPECT_EQ(state_count(DataType::kAminoAcid), 20u);
  EXPECT_EQ(state_count(DataType::kCodon), 61u);
}

TEST(DataTypes, NucleotideEncoding) {
  EXPECT_EQ(encode_nucleotide('A'), 0);
  EXPECT_EQ(encode_nucleotide('c'), 1);
  EXPECT_EQ(encode_nucleotide('G'), 2);
  EXPECT_EQ(encode_nucleotide('U'), 3);
  EXPECT_EQ(encode_nucleotide('-'), kMissing);
  EXPECT_EQ(encode_nucleotide('N'), kMissing);
  EXPECT_EQ(decode_nucleotide(2), 'G');
}

TEST(DataTypes, AminoAcidEncodingRoundTrip) {
  for (State s = 0; s < 20; ++s) {
    EXPECT_EQ(encode_amino_acid(decode_amino_acid(s)), s);
  }
  EXPECT_EQ(encode_amino_acid('X'), kMissing);
  EXPECT_EQ(encode_amino_acid('-'), kMissing);
}

TEST(GeneticCodeTest, SixtyOneSenseCodons) {
  const auto& code = GeneticCode::standard();
  std::set<State> states;
  int stops = 0;
  for (std::size_t packed = 0; packed < 64; ++packed) {
    if (code.codon_state[packed] == kMissing) {
      ++stops;
    } else {
      states.insert(code.codon_state[packed]);
    }
  }
  EXPECT_EQ(stops, 3);
  EXPECT_EQ(states.size(), 61u);
}

TEST(GeneticCodeTest, KnownTranslations) {
  // ATG -> Met, TGG -> Trp, GGG -> Gly; TAA/TAG/TGA are stops.
  const State atg = encode_codon('A', 'T', 'G');
  ASSERT_NE(atg, kMissing);
  EXPECT_EQ(GeneticCode::standard().codon_aa[static_cast<std::size_t>(atg)],
            encode_amino_acid('M'));
  const State tgg = encode_codon('T', 'G', 'G');
  EXPECT_EQ(GeneticCode::standard().codon_aa[static_cast<std::size_t>(tgg)],
            encode_amino_acid('W'));
  EXPECT_EQ(encode_codon('T', 'A', 'A'), kMissing);
  EXPECT_EQ(encode_codon('T', 'A', 'G'), kMissing);
  EXPECT_EQ(encode_codon('T', 'G', 'A'), kMissing);
}

TEST(GeneticCodeTest, CodonRoundTrip) {
  for (State s = 0; s < 61; ++s) {
    const std::string nucs = decode_codon(s);
    EXPECT_EQ(encode_codon(nucs[0], nucs[1], nucs[2]), s);
  }
}

TEST(GeneticCodeTest, DifferencesAndTransitions) {
  const State aaa = encode_codon('A', 'A', 'A');  // Lys
  const State aag = encode_codon('A', 'A', 'G');  // Lys
  const State aac = encode_codon('A', 'A', 'C');  // Asn
  EXPECT_EQ(codon_differences(aaa, aag), 1);
  EXPECT_TRUE(codon_single_diff_is_transition(aaa, aag));   // A<->G
  EXPECT_FALSE(codon_single_diff_is_transition(aaa, aac));  // A<->C
  EXPECT_TRUE(codon_synonymous(aaa, aag));
  EXPECT_FALSE(codon_synonymous(aaa, aac));
  EXPECT_EQ(codon_differences(aaa, encode_codon('C', 'C', 'C')), 3);
}

// ---------------------------------------------------------------------------
// Alignment

TEST(AlignmentTest, FastaParsing) {
  const auto alignment = Alignment::parse_fasta(
      ">A desc\nACGT\n>B\nAC-T\n>C\nACGA\n>D\nTCGA\n",
      DataType::kNucleotide);
  EXPECT_EQ(alignment.n_taxa(), 4u);
  EXPECT_EQ(alignment.n_sites(), 4u);
  EXPECT_EQ(alignment.taxon_name(0), "A");
  EXPECT_EQ(alignment.state(1, 2), kMissing);
  EXPECT_EQ(alignment.state(3, 0), 3);  // T
}

TEST(AlignmentTest, FastaErrors) {
  EXPECT_THROW(Alignment::parse_fasta("", DataType::kNucleotide),
               std::runtime_error);
  EXPECT_THROW(Alignment::parse_fasta("ACGT\n", DataType::kNucleotide),
               std::runtime_error);
  EXPECT_THROW(
      Alignment::parse_fasta(">A\nACGT\n>B\nAC\n", DataType::kNucleotide),
      std::runtime_error);
  EXPECT_THROW(Alignment::parse_fasta(">\nACGT\n", DataType::kNucleotide),
               std::runtime_error);
}

TEST(AlignmentTest, PhylipParsing) {
  const auto alignment = Alignment::parse_phylip(
      "4 4\nA ACGT\nB ACGT\nC AC GT\nD ACGT\n", DataType::kNucleotide);
  EXPECT_EQ(alignment.n_taxa(), 4u);
  EXPECT_EQ(alignment.n_sites(), 4u);
  EXPECT_EQ(alignment.state(2, 3), 3);
}

TEST(AlignmentTest, PhylipErrors) {
  EXPECT_THROW(Alignment::parse_phylip("x", DataType::kNucleotide),
               std::runtime_error);
  EXPECT_THROW(Alignment::parse_phylip("2 4\nA ACGT\n", DataType::kNucleotide),
               std::runtime_error);
  EXPECT_THROW(
      Alignment::parse_phylip("1 4\nA AC\n", DataType::kNucleotide),
      std::runtime_error);
}

TEST(AlignmentTest, CodonEncodingDropsStops) {
  const auto alignment = Alignment::parse_fasta(
      ">A\nATGTAA\n>B\nATGAAA\n", DataType::kCodon);
  EXPECT_EQ(alignment.n_sites(), 2u);
  EXPECT_EQ(alignment.state(0, 1), kMissing);  // TAA is a stop
  EXPECT_NE(alignment.state(1, 1), kMissing);
}

TEST(AlignmentTest, CodonLengthMustBeTriple) {
  EXPECT_THROW(Alignment::parse_fasta(">A\nACGTA\n", DataType::kCodon),
               std::runtime_error);
}

TEST(AlignmentTest, DuplicateTaxonRejected) {
  Alignment alignment(DataType::kNucleotide, 2);
  alignment.add_taxon("A", {0, 1});
  EXPECT_THROW(alignment.add_taxon("A", {0, 1}), std::invalid_argument);
}

TEST(AlignmentTest, FastaRoundTrip) {
  const auto alignment = Alignment::parse_fasta(
      ">A\nACGT\n>B\nAC-T\n", DataType::kNucleotide);
  const auto reparsed =
      Alignment::parse_fasta(alignment.to_fasta(), DataType::kNucleotide);
  EXPECT_EQ(reparsed.n_taxa(), 2u);
  for (std::size_t t = 0; t < 2; ++t) {
    for (std::size_t s = 0; s < 4; ++s) {
      EXPECT_EQ(reparsed.state(t, s), alignment.state(t, s));
    }
  }
}

TEST(AlignmentTest, MissingFraction) {
  const auto alignment = Alignment::parse_fasta(
      ">A\nAC-T\n>B\n----\n", DataType::kNucleotide);
  EXPECT_DOUBLE_EQ(alignment.missing_fraction(), 5.0 / 8.0);
}

TEST(AlignmentTest, BootstrapPreservesShape) {
  util::Rng rng(1);
  const auto alignment = Alignment::parse_fasta(
      ">A\nACGTACGT\n>B\nACGTTTTT\n>C\nAAAAACGT\n>D\nTTTTACGT\n",
      DataType::kNucleotide);
  const auto resampled = alignment.bootstrap_resample(rng);
  EXPECT_EQ(resampled.n_taxa(), 4u);
  EXPECT_EQ(resampled.n_sites(), 8u);
  // Every resampled column must be one of the original columns.
  for (std::size_t s = 0; s < 8; ++s) {
    bool found = false;
    for (std::size_t orig = 0; orig < 8 && !found; ++orig) {
      bool all = true;
      for (std::size_t t = 0; t < 4; ++t) {
        if (resampled.state(t, s) != alignment.state(t, orig)) all = false;
      }
      found = all;
    }
    EXPECT_TRUE(found);
  }
}

TEST(AlignmentTest, NexusSequentialParsing) {
  const auto alignment = Alignment::parse_nexus(R"(#NEXUS
BEGIN DATA;
  DIMENSIONS NTAX=3 NCHAR=8;
  FORMAT DATATYPE=DNA MISSING=? GAP=-;
  MATRIX
    alpha ACGTACGT
    beta  ACGT-CGT
    gamma AC?TACGA
  ;
END;
)");
  EXPECT_EQ(alignment.data_type(), DataType::kNucleotide);
  EXPECT_EQ(alignment.n_taxa(), 3u);
  EXPECT_EQ(alignment.n_sites(), 8u);
  EXPECT_EQ(alignment.state(1, 4), kMissing);  // gap
  EXPECT_EQ(alignment.state(2, 2), kMissing);  // '?'
  EXPECT_EQ(alignment.taxon_name(2), "gamma");
}

TEST(AlignmentTest, NexusInterleavedParsing) {
  const auto alignment = Alignment::parse_nexus(R"(#NEXUS
begin characters;
  dimensions ntax=2 nchar=8;
  format datatype=protein interleave=yes;
  matrix
    one  ACDE
    two  FGHI

    one  KLMN
    two  PQRS
  ;
end;
)");
  EXPECT_EQ(alignment.data_type(), DataType::kAminoAcid);
  EXPECT_EQ(alignment.n_taxa(), 2u);
  EXPECT_EQ(alignment.n_sites(), 8u);
  EXPECT_EQ(alignment.state(0, 4), encode_amino_acid('K'));
}

TEST(AlignmentTest, NexusCommentsAndTypeOverride) {
  // NCHAR counts raw characters; the codon override re-encodes triplets.
  const auto alignment = Alignment::parse_nexus(R"(#NEXUS
BEGIN DATA; [a comment]
  DIMENSIONS NTAX=2 NCHAR=6;
  FORMAT DATATYPE=DNA;
  MATRIX
    a ATGAAA [another comment]
    b ATGAAG
  ;
END;
)",
                                                DataType::kCodon);
  EXPECT_EQ(alignment.data_type(), DataType::kCodon);
  EXPECT_EQ(alignment.n_sites(), 2u);
  EXPECT_EQ(alignment.state(0, 0), encode_codon('A', 'T', 'G'));
}

TEST(AlignmentTest, NexusErrors) {
  EXPECT_THROW(Alignment::parse_nexus("not nexus"), std::runtime_error);
  EXPECT_THROW(Alignment::parse_nexus("#NEXUS\nBEGIN DATA;\nEND;\n"),
               std::runtime_error);
  // NTAX mismatch.
  EXPECT_THROW(Alignment::parse_nexus(R"(#NEXUS
BEGIN DATA;
  DIMENSIONS NTAX=3 NCHAR=4;
  MATRIX
    a ACGT
    b ACGT
  ;
END;
)"),
               std::runtime_error);
  // NCHAR mismatch.
  EXPECT_THROW(Alignment::parse_nexus(R"(#NEXUS
BEGIN DATA;
  DIMENSIONS NTAX=2 NCHAR=5;
  MATRIX
    a ACGT
    b ACGT
  ;
END;
)"),
               std::runtime_error);
  // Unsupported datatype keyword.
  EXPECT_THROW(Alignment::parse_nexus(R"(#NEXUS
BEGIN DATA;
  DIMENSIONS NTAX=2 NCHAR=4;
  FORMAT DATATYPE=STANDARD;
  MATRIX
    a 0101
    b 1010
  ;
END;
)"),
               std::runtime_error);
}

TEST(PatternizedTest, CompressesDuplicateColumns) {
  const auto alignment = Alignment::parse_fasta(
      ">A\nAAAC\n>B\nAAAC\n>C\nAAAG\n>D\nAAAG\n", DataType::kNucleotide);
  const PatternizedAlignment patterns(alignment);
  EXPECT_EQ(patterns.n_patterns(), 2u);
  EXPECT_EQ(patterns.n_sites(), 4u);
  double total_weight = 0.0;
  for (std::size_t p = 0; p < patterns.n_patterns(); ++p) {
    total_weight += patterns.weight(p);
  }
  EXPECT_DOUBLE_EQ(total_weight, 4.0);
}

// ---------------------------------------------------------------------------
// Tree

TEST(TreeTest, RandomTreeIsValid) {
  util::Rng rng(1);
  for (std::size_t n : {2u, 3u, 5u, 10u, 40u}) {
    const Tree tree = Tree::random(n, rng);
    EXPECT_EQ(tree.n_leaves(), n);
    EXPECT_EQ(tree.n_nodes(), 2 * n - 1);
    EXPECT_TRUE(tree.check_valid());
  }
}

TEST(TreeTest, NewickRoundTrip) {
  util::Rng rng(2);
  std::vector<std::string> names;
  for (int i = 0; i < 12; ++i) names.push_back("taxon" + std::to_string(i));
  const Tree tree = Tree::random(names.size(), rng);
  const std::string newick = tree.to_newick(names);
  const Tree reparsed = Tree::parse_newick(newick, names);
  EXPECT_EQ(Tree::robinson_foulds(tree, reparsed), 0u);
  EXPECT_NEAR(tree.tree_length(), reparsed.tree_length(), 1e-6);
}

TEST(TreeTest, ParseHandlesTrifurcatingRoot) {
  const Tree tree =
      Tree::parse_newick("(A:1,B:2,(C:1,D:1):0.5);", names4);
  EXPECT_TRUE(tree.check_valid());
  EXPECT_EQ(tree.n_leaves(), 4u);
}

TEST(TreeTest, ParseErrors) {
  EXPECT_THROW(Tree::parse_newick("(A,B", names4), std::runtime_error);
  EXPECT_THROW(Tree::parse_newick("(A,B,C,Z);", names4), std::runtime_error);
  EXPECT_THROW(Tree::parse_newick("(A,B,C);", names4), std::runtime_error);
  EXPECT_THROW(Tree::parse_newick("(A,A,C,D);", names4), std::runtime_error);
}

TEST(TreeTest, PostorderVisitsChildrenFirst) {
  util::Rng rng(3);
  const Tree tree = Tree::random(20, rng);
  std::vector<bool> seen(tree.n_nodes(), false);
  for (const int index : tree.postorder()) {
    if (!tree.is_leaf(index)) {
      EXPECT_TRUE(seen[static_cast<std::size_t>(tree.node(index).left)]);
      EXPECT_TRUE(seen[static_cast<std::size_t>(tree.node(index).right)]);
    }
    seen[static_cast<std::size_t>(index)] = true;
  }
  EXPECT_EQ(tree.postorder().back(), tree.root());
}

TEST(TreeTest, NniChangesTopologyByTwo) {
  util::Rng rng(4);
  const Tree original = Tree::random(10, rng);
  const auto internals = original.internal_edge_nodes();
  ASSERT_FALSE(internals.empty());
  Tree mutated = original;
  mutated.nni(internals.front(), 0);
  EXPECT_TRUE(mutated.check_valid());
  EXPECT_EQ(Tree::robinson_foulds(original, mutated), 2u);
}

TEST(TreeTest, NniTwiceRestoresTopology) {
  util::Rng rng(5);
  const Tree original = Tree::random(8, rng);
  const auto internals = original.internal_edge_nodes();
  Tree mutated = original;
  mutated.nni(internals.front(), 1);
  mutated.nni(internals.front(), 1);
  EXPECT_EQ(Tree::robinson_foulds(original, mutated), 0u);
}

TEST(TreeTest, SprProducesValidTree) {
  util::Rng rng(6);
  int successes = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Tree tree = Tree::random(12, rng);
    const int prune = static_cast<int>(rng.below(tree.n_nodes()));
    const int graft = static_cast<int>(rng.below(tree.n_nodes()));
    if (tree.spr(prune, graft)) {
      ++successes;
      EXPECT_TRUE(tree.check_valid());
      EXPECT_EQ(tree.n_nodes(), 23u);
    }
  }
  EXPECT_GT(successes, 50);
}

TEST(TreeTest, SprRejectsDegenerateMoves) {
  util::Rng rng(7);
  Tree tree = Tree::random(6, rng);
  EXPECT_FALSE(tree.spr(tree.root(), 0));
  EXPECT_FALSE(tree.spr(0, tree.root()));
  EXPECT_FALSE(tree.spr(0, 0));
}

TEST(TreeTest, RobinsonFouldsIdenticalIsZero) {
  util::Rng rng(8);
  const Tree tree = Tree::random(15, rng);
  EXPECT_EQ(Tree::robinson_foulds(tree, tree), 0u);
}

TEST(TreeTest, RobinsonFouldsDisjointCaterpillars) {
  // Maximally different trees on 8 taxa approach the 2*(n-3) bound.
  std::vector<std::string> names;
  for (int i = 0; i < 8; ++i) names.push_back("t" + std::to_string(i));
  const Tree a = Tree::parse_newick(
      "(((((((t0,t1),t2),t3),t4),t5),t6),t7);", names);
  const Tree b = Tree::parse_newick(
      "(((((((t0,t7),t3),t6),t1),t5),t2),t4);", names);
  EXPECT_GT(Tree::robinson_foulds(a, b), 6u);
}

TEST(TreeTest, BranchLengthValidation) {
  util::Rng rng(9);
  Tree tree = Tree::random(4, rng);
  EXPECT_THROW(tree.set_branch_length(0, -1.0), std::invalid_argument);
  tree.set_branch_length(0, 0.42);
  EXPECT_DOUBLE_EQ(tree.branch_length(0), 0.42);
}

TEST(TreeTest, LargeTreeSixtyFivePlusTaxaBipartitions) {
  // Exercises the multi-word bitset path in Robinson-Foulds.
  util::Rng rng(10);
  const Tree a = Tree::random(70, rng);
  Tree b = a;
  const auto internals = b.internal_edge_nodes();
  b.nni(internals[internals.size() / 2], 0);
  EXPECT_EQ(Tree::robinson_foulds(a, a), 0u);
  EXPECT_EQ(Tree::robinson_foulds(a, b), 2u);
}

// ---------------------------------------------------------------------------
// Linear algebra

TEST(Linalg, EigenOfDiagonalMatrix) {
  const std::vector<double> m{3.0, 0.0, 0.0, 1.0};
  const auto eigen = symmetric_eigen(m, 2);
  EXPECT_NEAR(eigen.values[0], 1.0, 1e-12);
  EXPECT_NEAR(eigen.values[1], 3.0, 1e-12);
}

TEST(Linalg, EigenReconstructsMatrix) {
  util::Rng rng(11);
  const std::size_t n = 8;
  std::vector<double> m(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      m[i * n + j] = m[j * n + i] = rng.normal();
    }
  }
  const auto eigen = symmetric_eigen(m, n);
  // Reconstruct A = V diag(values) V^T.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        sum += eigen.vectors[i * n + k] * eigen.values[k] *
               eigen.vectors[j * n + k];
      }
      EXPECT_NEAR(sum, m[i * n + j], 1e-9);
    }
  }
}

TEST(Linalg, EigenVectorsOrthonormal) {
  util::Rng rng(12);
  const std::size_t n = 6;
  std::vector<double> m(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      m[i * n + j] = m[j * n + i] = rng.uniform();
    }
  }
  const auto eigen = symmetric_eigen(m, n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        dot += eigen.vectors[i * n + a] * eigen.vectors[i * n + b];
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Linalg, SizeMismatchThrows) {
  EXPECT_THROW(symmetric_eigen(std::vector<double>{1.0, 2.0}, 2),
               std::invalid_argument);
}

TEST(Linalg, MatmulIdentity) {
  const std::vector<double> identity{1, 0, 0, 1};
  const std::vector<double> m{1, 2, 3, 4};
  std::vector<double> out(4);
  matmul(m, identity, out, 2);
  EXPECT_EQ(out, m);
}

// ---------------------------------------------------------------------------
// Models

TEST(Gamma, RegularizedIncompleteGammaKnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (double x : {0.1, 0.5, 1.0, 3.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-10);
  }
  EXPECT_NEAR(regularized_gamma_p(0.5, 1e9), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
}

TEST(Gamma, DiscreteRatesHaveMeanOneAndIncrease) {
  for (double alpha : {0.1, 0.5, 1.0, 5.0}) {
    for (std::size_t k : {2u, 4u, 8u}) {
      const auto rates = discrete_gamma_rates(alpha, k);
      ASSERT_EQ(rates.size(), k);
      double mean = 0.0;
      for (std::size_t i = 0; i < k; ++i) {
        mean += rates[i];
        if (i > 0) {
          EXPECT_GT(rates[i], rates[i - 1]);
        }
      }
      EXPECT_NEAR(mean / static_cast<double>(k), 1.0, 1e-9);
    }
  }
}

TEST(Gamma, LargeAlphaApproachesEqualRates) {
  const auto rates = discrete_gamma_rates(200.0, 4);
  for (double r : rates) EXPECT_NEAR(r, 1.0, 0.1);
}

TEST(ModelSpecTest, ValidationCatchesBadParameters) {
  ModelSpec spec;
  spec.kappa = -1.0;
  EXPECT_TRUE(spec.validate().has_value());
  spec = ModelSpec{};
  spec.base_frequencies = {0.5, 0.5, 0.5, 0.5};
  EXPECT_TRUE(spec.validate().has_value());
  spec = ModelSpec{};
  spec.rate_het = RateHet::kGamma;
  spec.n_rate_categories = 1;
  EXPECT_TRUE(spec.validate().has_value());
  spec = ModelSpec{};
  spec.rate_het = RateHet::kGammaInvariant;
  spec.proportion_invariant = 1.5;
  EXPECT_TRUE(spec.validate().has_value());
  EXPECT_FALSE(ModelSpec{}.validate().has_value());
}

TEST(ModelSpecTest, FreeRateParameters) {
  ModelSpec spec;
  spec.nuc_model = NucModel::kJC69;
  EXPECT_EQ(spec.free_rate_parameters(), 0u);
  spec.nuc_model = NucModel::kGTR;
  EXPECT_EQ(spec.free_rate_parameters(), 5u);
  spec.data_type = DataType::kCodon;
  EXPECT_EQ(spec.free_rate_parameters(), 2u);
}

TEST(ModelSpecTest, Names) {
  ModelSpec spec;
  spec.nuc_model = NucModel::kGTR;
  spec.rate_het = RateHet::kGamma;
  spec.n_rate_categories = 4;
  EXPECT_EQ(spec.name(), "GTR+G4");
  spec.rate_het = RateHet::kGammaInvariant;
  EXPECT_EQ(spec.name(), "GTR+I+G4");
}

TEST(ModelTest, TransitionMatrixRowsSumToOne) {
  for (DataType type :
       {DataType::kNucleotide, DataType::kAminoAcid, DataType::kCodon}) {
    ModelSpec spec;
    spec.data_type = type;
    const SubstitutionModel model(spec);
    const std::size_t n = model.n_states();
    std::vector<double> p(n * n);
    for (double t : {0.01, 0.1, 1.0, 5.0}) {
      model.transition_matrix(t, 1.0, p);
      for (std::size_t i = 0; i < n; ++i) {
        double row = 0.0;
        for (std::size_t j = 0; j < n; ++j) row += p[i * n + j];
        EXPECT_NEAR(row, 1.0, 1e-8);
      }
    }
  }
}

TEST(ModelTest, ZeroTimeIsIdentity) {
  const SubstitutionModel model(ModelSpec{});
  std::vector<double> p(16);
  model.transition_matrix(0.0, 1.0, p);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(p[i * 4 + j], i == j ? 1.0 : 0.0);
    }
  }
}

TEST(ModelTest, LongTimeApproachesEquilibrium) {
  ModelSpec spec;
  spec.nuc_model = NucModel::kHKY85;
  spec.base_frequencies = {0.1, 0.2, 0.3, 0.4};
  const SubstitutionModel model(spec);
  std::vector<double> p(16);
  model.transition_matrix(500.0, 1.0, p);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(p[i * 4 + j], spec.base_frequencies[j], 1e-6);
    }
  }
}

TEST(ModelTest, Jc69MatchesClosedForm) {
  ModelSpec spec;
  spec.nuc_model = NucModel::kJC69;
  const SubstitutionModel model(spec);
  std::vector<double> p(16);
  for (double t : {0.05, 0.2, 0.8}) {
    model.transition_matrix(t, 1.0, p);
    const double same = 0.25 + 0.75 * std::exp(-4.0 * t / 3.0);
    const double diff = 0.25 - 0.25 * std::exp(-4.0 * t / 3.0);
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        EXPECT_NEAR(p[i * 4 + j], i == j ? same : diff, 1e-10);
      }
    }
  }
}

TEST(ModelTest, DetailedBalanceHolds) {
  ModelSpec spec;
  spec.nuc_model = NucModel::kGTR;
  spec.gtr_rates = {1.2, 3.1, 0.7, 0.9, 3.6, 1.0};
  spec.base_frequencies = {0.35, 0.15, 0.2, 0.3};
  const SubstitutionModel model(spec);
  std::vector<double> p(16);
  model.transition_matrix(0.3, 1.0, p);
  const auto freqs = model.frequencies();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(freqs[i] * p[i * 4 + j], freqs[j] * p[j * 4 + i], 1e-10);
    }
  }
}

TEST(ModelTest, ChapmanKolmogorov) {
  ModelSpec spec;
  spec.nuc_model = NucModel::kHKY85;
  spec.kappa = 3.0;
  spec.base_frequencies = {0.3, 0.2, 0.2, 0.3};
  const SubstitutionModel model(spec);
  std::vector<double> p1(16);
  std::vector<double> p2(16);
  std::vector<double> p12(16);
  std::vector<double> composed(16);
  model.transition_matrix(0.2, 1.0, p1);
  model.transition_matrix(0.5, 1.0, p2);
  model.transition_matrix(0.7, 1.0, p12);
  matmul(p1, p2, composed, 4);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_NEAR(composed[i], p12[i], 1e-9);
  }
}

TEST(ModelTest, RateCategoriesNormalized) {
  ModelSpec spec;
  spec.rate_het = RateHet::kGammaInvariant;
  spec.n_rate_categories = 4;
  spec.gamma_alpha = 0.7;
  spec.proportion_invariant = 0.2;
  const SubstitutionModel model(spec);
  const auto cats = model.categories();
  EXPECT_EQ(cats.size(), 5u);  // invariant + 4 gamma
  EXPECT_DOUBLE_EQ(cats[0].rate, 0.0);
  double weight = 0.0;
  double mean_rate = 0.0;
  for (const auto& cat : cats) {
    weight += cat.weight;
    mean_rate += cat.weight * cat.rate;
  }
  EXPECT_NEAR(weight, 1.0, 1e-12);
  EXPECT_NEAR(mean_rate, 1.0, 1e-9);
}

TEST(ModelTest, CodonFrequenciesFollowF1x4) {
  ModelSpec spec;
  spec.data_type = DataType::kCodon;
  spec.base_frequencies = {0.4, 0.1, 0.2, 0.3};
  const SubstitutionModel model(spec);
  const auto freqs = model.frequencies();
  double total = 0.0;
  for (double f : freqs) total += f;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // AAA should be the most frequent codon given A has the top base freq.
  const auto aaa = static_cast<std::size_t>(encode_codon('A', 'A', 'A'));
  for (std::size_t s = 0; s < 61; ++s) {
    EXPECT_LE(freqs[s], freqs[aaa] + 1e-15);
  }
}

// ---------------------------------------------------------------------------
// Likelihood

TEST(Likelihood, TwoTaxonJc69MatchesAnalytic) {
  // L(site) for two taxa at distance t under JC69:
  //   same state: 0.25 * (0.25 + 0.75 e^{-4t/3})
  //   diff state: 0.25 * (0.25 - 0.25 e^{-4t/3})
  Alignment alignment(DataType::kNucleotide, 2);
  alignment.add_taxon("L", {0, 0});  // A A
  alignment.add_taxon("R", {0, 1});  // A C
  const PatternizedAlignment patterns(alignment);
  LikelihoodEngine engine(patterns);

  ModelSpec spec;
  spec.nuc_model = NucModel::kJC69;
  const SubstitutionModel model(spec);

  std::vector<std::string> names{"L", "R"};
  const Tree tree = Tree::parse_newick("(L:0.1,R:0.2);", names);
  const double t = 0.3;
  const double same = 0.25 * (0.25 + 0.75 * std::exp(-4.0 * t / 3.0));
  const double diff = 0.25 * (0.25 - 0.25 * std::exp(-4.0 * t / 3.0));
  EXPECT_NEAR(engine.log_likelihood(tree, model),
              std::log(same) + std::log(diff), 1e-9);
}

TEST(Likelihood, PulleyPrinciple) {
  // Likelihood depends only on the sum of the two root branch lengths for
  // reversible models.
  Alignment alignment(DataType::kNucleotide, 3);
  alignment.add_taxon("L", {0, 1, 2});
  alignment.add_taxon("R", {0, 1, 3});
  alignment.add_taxon("M", {1, 1, 2});
  const PatternizedAlignment patterns(alignment);
  LikelihoodEngine engine(patterns);
  ModelSpec spec;
  spec.nuc_model = NucModel::kHKY85;
  spec.kappa = 2.5;
  const SubstitutionModel model(spec);
  std::vector<std::string> names{"L", "R", "M"};
  const Tree a = Tree::parse_newick("((L:0.1,M:0.2):0.05,R:0.25);", names);
  const Tree b = Tree::parse_newick("((L:0.1,M:0.2):0.15,R:0.15);", names);
  EXPECT_NEAR(engine.log_likelihood(a, model),
              engine.log_likelihood(b, model), 1e-9);
}

TEST(Likelihood, MissingDataIsNeutral) {
  // A taxon of all-missing data on a zero-length branch must not change
  // the likelihood contribution of the others.
  Alignment with(DataType::kNucleotide, 2);
  with.add_taxon("A", {0, 1});
  with.add_taxon("B", {0, 2});
  with.add_taxon("C", {kMissing, kMissing});
  const PatternizedAlignment patterns3(with);
  LikelihoodEngine engine3(patterns3);

  Alignment without(DataType::kNucleotide, 2);
  without.add_taxon("A", {0, 1});
  without.add_taxon("B", {0, 2});
  const PatternizedAlignment patterns2(without);
  LikelihoodEngine engine2(patterns2);

  const SubstitutionModel model{ModelSpec{}};
  std::vector<std::string> names3{"A", "B", "C"};
  std::vector<std::string> names2{"A", "B"};
  const Tree t3 =
      Tree::parse_newick("((A:0.1,B:0.2):0.0,C:0.0);", names3);
  const Tree t2 = Tree::parse_newick("(A:0.1,B:0.2);", names2);
  EXPECT_NEAR(engine3.log_likelihood(t3, model),
              engine2.log_likelihood(t2, model), 1e-9);
}

TEST(Likelihood, GammaMixImprovesFitOnHeterogeneousData) {
  // Simulate under strong rate heterogeneity; the gamma model should fit
  // better than the equal-rates model on the same tree.
  util::Rng rng(21);
  ModelSpec truth;
  truth.rate_het = RateHet::kGamma;
  truth.gamma_alpha = 0.3;
  truth.n_rate_categories = 4;
  const auto dataset = simulate_dataset(8, 600, truth, rng, 0.15);
  const PatternizedAlignment patterns(dataset.alignment);
  LikelihoodEngine engine(patterns);
  ModelSpec flat;
  flat.rate_het = RateHet::kNone;
  const double lnl_flat =
      engine.log_likelihood(dataset.tree, SubstitutionModel(flat));
  const double lnl_gamma =
      engine.log_likelihood(dataset.tree, SubstitutionModel(truth));
  EXPECT_GT(lnl_gamma, lnl_flat);
}

TEST(Likelihood, ScalingHandlesLongTrees) {
  // Many taxa and long branches would underflow without rescaling.
  util::Rng rng(22);
  const Tree tree = Tree::random(60, rng, 1.2);
  ModelSpec spec;
  const SubstitutionModel model(spec);
  const Alignment alignment = simulate_alignment(tree, model, 50, rng);
  const PatternizedAlignment patterns(alignment);
  LikelihoodEngine engine(patterns);
  const double lnl = engine.log_likelihood(tree, model);
  EXPECT_TRUE(std::isfinite(lnl));
  EXPECT_LT(lnl, 0.0);
}

TEST(Likelihood, MismatchesRejected) {
  Alignment alignment(DataType::kNucleotide, 1);
  alignment.add_taxon("A", {0});
  alignment.add_taxon("B", {1});
  const PatternizedAlignment patterns(alignment);
  LikelihoodEngine engine(patterns);
  util::Rng rng(23);
  const Tree wrong_size = Tree::random(5, rng);
  EXPECT_THROW(
      engine.log_likelihood(wrong_size, SubstitutionModel(ModelSpec{})),
      std::invalid_argument);
  ModelSpec aa;
  aa.data_type = DataType::kAminoAcid;
  const Tree right_size = Tree::random(2, rng);
  EXPECT_THROW(engine.log_likelihood(right_size, SubstitutionModel(aa)),
               std::invalid_argument);
}

TEST(Likelihood, TrueTreeBeatsRandomTree) {
  util::Rng rng(24);
  ModelSpec spec;
  const auto dataset = simulate_dataset(10, 800, spec, rng, 0.12);
  const PatternizedAlignment patterns(dataset.alignment);
  LikelihoodEngine engine(patterns);
  const SubstitutionModel model(spec);
  const double lnl_true = engine.log_likelihood(dataset.tree, model);
  double best_random = -1e300;
  for (int i = 0; i < 5; ++i) {
    const Tree random_tree = Tree::random(10, rng, 0.12);
    best_random = std::max(best_random,
                           engine.log_likelihood(random_tree, model));
  }
  EXPECT_GT(lnl_true, best_random);
}

// ---------------------------------------------------------------------------
// Optimization

TEST(Brent, FindsQuadraticMinimum) {
  const auto result = brent_minimize(
      [](double x) { return (x - 2.0) * (x - 2.0) + 1.0; }, -10.0, 10.0);
  EXPECT_NEAR(result.x, 2.0, 1e-4);
  EXPECT_NEAR(result.fx, 1.0, 1e-8);
}

TEST(Brent, HandlesBoundaryMinimum) {
  const auto result =
      brent_minimize([](double x) { return x; }, 1.0, 5.0, 1e-8);
  EXPECT_NEAR(result.x, 1.0, 1e-5);
}

TEST(Optimize, BranchLengthsRecoverSimulationScale) {
  util::Rng rng(25);
  ModelSpec spec;
  const auto dataset = simulate_dataset(8, 2000, spec, rng, 0.1);
  const PatternizedAlignment patterns(dataset.alignment);
  LikelihoodEngine engine(patterns);
  const SubstitutionModel model(spec);

  Tree perturbed = dataset.tree;
  for (std::size_t i = 0; i < perturbed.n_nodes(); ++i) {
    if (static_cast<int>(i) != perturbed.root()) {
      perturbed.set_branch_length(static_cast<int>(i), 0.3);
    }
  }
  const double before = engine.log_likelihood(perturbed, model);
  const double after =
      optimize_branch_lengths(engine, perturbed, model, 2);
  EXPECT_GT(after, before);
  const double lnl_true = engine.log_likelihood(dataset.tree, model);
  EXPECT_GT(after, lnl_true - 15.0);
}

TEST(Optimize, ModelParametersImproveFit) {
  util::Rng rng(26);
  ModelSpec truth;
  truth.nuc_model = NucModel::kHKY85;
  truth.kappa = 6.0;
  const auto dataset = simulate_dataset(8, 1500, truth, rng, 0.1);
  const PatternizedAlignment patterns(dataset.alignment);
  LikelihoodEngine engine(patterns);

  ModelSpec guess = truth;
  guess.kappa = 1.0;
  const double before =
      engine.log_likelihood(dataset.tree, SubstitutionModel(guess));
  const double after =
      optimize_model_parameters(engine, dataset.tree, guess);
  EXPECT_GT(after, before);
  EXPECT_NEAR(guess.kappa, 6.0, 2.0);
}

// ---------------------------------------------------------------------------
// Simulation

TEST(Simulate, AlignmentShapeAndStates) {
  util::Rng rng(27);
  const Tree tree = Tree::random(6, rng);
  const SubstitutionModel model{ModelSpec{}};
  const Alignment alignment = simulate_alignment(tree, model, 100, rng);
  EXPECT_EQ(alignment.n_taxa(), 6u);
  EXPECT_EQ(alignment.n_sites(), 100u);
  EXPECT_DOUBLE_EQ(alignment.missing_fraction(), 0.0);
}

TEST(Simulate, ShortBranchesGiveConservedSequences) {
  util::Rng rng(28);
  const Tree tree = Tree::random(6, rng, 0.001);
  const SubstitutionModel model{ModelSpec{}};
  const Alignment alignment = simulate_alignment(tree, model, 200, rng);
  const PatternizedAlignment patterns(alignment);
  // Nearly all columns should be constant -> few unique patterns.
  EXPECT_LT(patterns.n_patterns(), 20u);
}

TEST(Simulate, InvariantCategoryProducesConstantSites) {
  util::Rng rng(29);
  ModelSpec spec;
  spec.rate_het = RateHet::kGammaInvariant;
  spec.proportion_invariant = 0.5;
  spec.gamma_alpha = 2.0;
  const Tree tree = Tree::random(6, rng, 1.0);
  const SubstitutionModel model(spec);
  const Alignment alignment = simulate_alignment(tree, model, 400, rng);
  std::size_t constant = 0;
  for (std::size_t s = 0; s < alignment.n_sites(); ++s) {
    bool all_same = true;
    for (std::size_t t = 1; t < alignment.n_taxa(); ++t) {
      if (alignment.state(t, s) != alignment.state(0, s)) all_same = false;
    }
    if (all_same) ++constant;
  }
  // At least the invariant half, plus some chance-constant sites.
  EXPECT_GT(constant, 180u);
}

// ---------------------------------------------------------------------------
// GA search

TEST(Ga, RecoversTopologyOnCleanData) {
  util::Rng rng(30);
  ModelSpec spec;
  const auto dataset = simulate_dataset(7, 1200, spec, rng, 0.15);
  const PatternizedAlignment patterns(dataset.alignment);
  GaConfig config;
  config.genthresh = 60;
  config.max_generations = 2000;
  config.seed = 7;
  GaSearch search(patterns, spec, config);
  const Individual& best = search.run();
  EXPECT_LE(Tree::robinson_foulds(best.tree, dataset.tree), 2u);
}

TEST(Ga, MonotoneBestLikelihood) {
  util::Rng rng(31);
  ModelSpec spec;
  const auto dataset = simulate_dataset(6, 300, spec, rng, 0.2);
  const PatternizedAlignment patterns(dataset.alignment);
  GaConfig config;
  config.genthresh = 30;
  config.seed = 3;
  GaSearch search(patterns, spec, config);
  double last = search.best().log_likelihood;
  while (search.step()) {
    EXPECT_GE(search.best().log_likelihood, last - 1e-9);
    last = search.best().log_likelihood;
  }
  EXPECT_TRUE(search.done());
}

TEST(Ga, GenthreshTerminates) {
  util::Rng rng(32);
  ModelSpec spec;
  const auto dataset = simulate_dataset(5, 100, spec, rng, 0.2);
  const PatternizedAlignment patterns(dataset.alignment);
  GaConfig config;
  config.genthresh = 10;
  config.max_generations = 100000;
  GaSearch search(patterns, spec, config);
  search.run();
  EXPECT_GE(search.generations_since_improvement(), 10u);
  EXPECT_LT(search.generation(), 100000u);
}

TEST(Ga, StartingTreeIsUsed) {
  util::Rng rng(33);
  ModelSpec spec;
  const auto dataset = simulate_dataset(6, 400, spec, rng, 0.15);
  const PatternizedAlignment patterns(dataset.alignment);
  GaConfig config;
  config.genthresh = 5;
  config.max_generations = 5;
  GaSearch search(patterns, spec, config, dataset.tree);
  // With a correct starting tree and almost no search, the result should
  // still be the starting topology.
  EXPECT_LE(Tree::robinson_foulds(search.best().tree, dataset.tree), 2u);
}

TEST(Ga, DeterministicForSeed) {
  util::Rng rng(34);
  ModelSpec spec;
  const auto dataset = simulate_dataset(6, 200, spec, rng, 0.2);
  const PatternizedAlignment patterns(dataset.alignment);
  GaConfig config;
  config.genthresh = 20;
  config.seed = 99;
  GaSearch a(patterns, spec, config);
  GaSearch b(patterns, spec, config);
  a.run();
  b.run();
  EXPECT_DOUBLE_EQ(a.best().log_likelihood, b.best().log_likelihood);
  EXPECT_EQ(a.generation(), b.generation());
}

TEST(Ga, CheckpointRestoreContinuesIdentically) {
  util::Rng rng(35);
  ModelSpec spec;
  spec.rate_het = RateHet::kGamma;
  const auto dataset = simulate_dataset(6, 200, spec, rng, 0.2);
  const PatternizedAlignment patterns(dataset.alignment);
  GaConfig config;
  config.genthresh = 40;
  config.seed = 123;

  GaSearch full(patterns, spec, config);
  GaSearch half(patterns, spec, config);
  for (int i = 0; i < 10; ++i) half.step();
  const std::string saved = half.checkpoint();
  GaSearch resumed = GaSearch::restore(patterns, saved);
  EXPECT_EQ(resumed.generation(), half.generation());

  // Run both to completion; the restored search must match the original
  // instance exactly (same RNG stream, same population).
  for (int i = 0; i < 10; ++i) full.step();
  while (true) {
    const bool a = half.step();
    const bool b = resumed.step();
    ASSERT_EQ(a, b);
    if (!a) break;
    ASSERT_DOUBLE_EQ(half.best().log_likelihood,
                     resumed.best().log_likelihood);
  }
}

TEST(Ga, CheckpointRejectsGarbage) {
  util::Rng rng(36);
  ModelSpec spec;
  const auto dataset = simulate_dataset(5, 50, spec, rng);
  const PatternizedAlignment patterns(dataset.alignment);
  EXPECT_THROW(GaSearch::restore(patterns, "not a checkpoint"),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// GARLI job layer

TEST(GarliJobTest, ConfigRoundTrip) {
  GarliJob job;
  job.model.data_type = DataType::kNucleotide;
  job.model.nuc_model = NucModel::kGTR;
  job.model.rate_het = RateHet::kGammaInvariant;
  job.model.n_rate_categories = 6;
  job.model.kappa = 3.5;
  job.search_replicates = 10;
  job.genthresh = 500;
  job.bootstrap = true;
  job.seed = 42;
  job.starting_tree = "(A:1,B:1,(C:1,D:1):1);";

  const GarliJob reparsed = GarliJob::from_config(job.to_config());
  EXPECT_EQ(reparsed.model.nuc_model, NucModel::kGTR);
  EXPECT_EQ(reparsed.model.rate_het, RateHet::kGammaInvariant);
  EXPECT_EQ(reparsed.model.n_rate_categories, 6u);
  EXPECT_EQ(reparsed.search_replicates, 10u);
  EXPECT_EQ(reparsed.genthresh, 500u);
  EXPECT_TRUE(reparsed.bootstrap);
  EXPECT_EQ(reparsed.seed, 42u);
  ASSERT_TRUE(reparsed.starting_tree.has_value());
}

TEST(GarliJobTest, FromConfigRejectsUnknownEnums) {
  EXPECT_THROW(GarliJob::from_config("[general]\ndatatype = quantum\n"),
               std::runtime_error);
  EXPECT_THROW(
      GarliJob::from_config("[model]\nratematrix = wrong\n"),
      std::runtime_error);
  EXPECT_THROW(
      GarliJob::from_config("[model]\nratehetmodel = sometimes\n"),
      std::runtime_error);
}

TEST(GarliJobTest, ValidationCatchesProblems) {
  util::Rng rng(37);
  const auto dataset = simulate_dataset(5, 60, ModelSpec{}, rng);

  GarliJob job;
  job.search_replicates = 3000;  // over the portal cap
  auto v = validate_garli_job(job, dataset.alignment);
  EXPECT_FALSE(v.ok);

  job = GarliJob{};
  job.model.data_type = DataType::kAminoAcid;  // mismatched data type
  v = validate_garli_job(job, dataset.alignment);
  EXPECT_FALSE(v.ok);

  job = GarliJob{};
  job.starting_tree = "((bogus);";
  v = validate_garli_job(job, dataset.alignment);
  EXPECT_FALSE(v.ok);

  job = GarliJob{};
  v = validate_garli_job(job, dataset.alignment);
  EXPECT_TRUE(v.ok) << (v.problems.empty() ? "" : v.problems.front());
}

TEST(GarliJobTest, TooFewTaxaRejected) {
  Alignment tiny(DataType::kNucleotide, 4);
  tiny.add_taxon("A", {0, 1, 2, 3});
  tiny.add_taxon("B", {0, 1, 2, 3});
  tiny.add_taxon("C", {0, 1, 2, 3});
  const auto v = validate_garli_job(GarliJob{}, tiny);
  EXPECT_FALSE(v.ok);
}

TEST(GarliJobTest, RunProducesReplicates) {
  util::Rng rng(38);
  const auto dataset = simulate_dataset(6, 300, ModelSpec{}, rng, 0.15);
  GarliJob job;
  job.search_replicates = 3;
  job.genthresh = 15;
  job.seed = 5;
  const GarliRunResult result = run_garli_job(job, dataset.alignment);
  ASSERT_EQ(result.replicates.size(), 3u);
  for (const auto& rep : result.replicates) {
    EXPECT_TRUE(std::isfinite(rep.best_log_likelihood));
    EXPECT_GT(rep.generations, 0u);
  }
  const double best =
      result.replicates[result.best_replicate].best_log_likelihood;
  for (const auto& rep : result.replicates) {
    EXPECT_LE(rep.best_log_likelihood, best + 1e-12);
  }
}

TEST(GarliJobTest, BootstrapReplicatesDiffer) {
  util::Rng rng(39);
  const auto dataset = simulate_dataset(6, 200, ModelSpec{}, rng, 0.2);
  GarliJob job;
  job.search_replicates = 2;
  job.genthresh = 10;
  job.bootstrap = true;
  const GarliRunResult result = run_garli_job(job, dataset.alignment);
  // Bootstrap searches run on different resamples; likelihoods should
  // essentially never coincide exactly.
  EXPECT_NE(result.replicates[0].best_log_likelihood,
            result.replicates[1].best_log_likelihood);
}

TEST(GarliJobTest, InvalidJobThrowsOnRun) {
  util::Rng rng(40);
  const auto dataset = simulate_dataset(5, 50, ModelSpec{}, rng);
  GarliJob job;
  job.search_replicates = 0;
  EXPECT_THROW(run_garli_job(job, dataset.alignment), std::invalid_argument);
}

}  // namespace
}  // namespace lattice::phylo
