// Tests for the engine extensions: consensus trees and bootstrap support
// (the portal's post-processing), the island-model parallel GA (GARLI's
// MPI flavor), and the BEAGLE-style transition-matrix cache.
#include <gtest/gtest.h>

#include <cmath>

#include "phylo/consensus.hpp"
#include "phylo/island.hpp"
#include "phylo/likelihood.hpp"
#include "phylo/simulate.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace lattice::phylo {
namespace {

std::vector<std::string> names_for(std::size_t n) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < n; ++i) names.push_back("t" + std::to_string(i));
  return names;
}

// ---------------------------------------------------------------------------
// Bipartitions and consensus

TEST(Consensus, BipartitionCountsIdenticalTrees) {
  util::Rng rng(1);
  const Tree tree = Tree::random(10, rng);
  std::vector<Tree> trees{tree, tree, tree};
  const auto counts = bipartition_counts(trees);
  // 10 taxa unrooted -> 7 internal edges.
  EXPECT_EQ(counts.size(), 7u);
  for (const auto& [split, count] : counts) {
    EXPECT_EQ(count, 3u);
  }
}

TEST(Consensus, TreeBipartitionsDedupeRootSplit) {
  // Both root children induce the same unrooted split; it must appear once.
  util::Rng rng(2);
  const Tree tree = Tree::random(8, rng);
  const auto splits = tree_bipartitions(tree);
  EXPECT_EQ(splits.size(), 5u);  // n - 3 internal edges
  for (std::size_t i = 1; i < splits.size(); ++i) {
    EXPECT_NE(splits[i - 1], splits[i]);
  }
}

TEST(Consensus, IdenticalInputsReproduceTopology) {
  util::Rng rng(3);
  const Tree tree = Tree::random(9, rng);
  std::vector<Tree> trees{tree, tree, tree, tree};
  const ConsensusResult consensus = majority_rule_consensus(trees);
  EXPECT_EQ(Tree::robinson_foulds(consensus.tree, tree), 0u);
  // Every internal split is supported at 100%.
  for (const auto& [node, support] : consensus.support) {
    EXPECT_DOUBLE_EQ(support, 1.0);
  }
  // Support is per internal non-root *node*: n - 2 entries, with the two
  // root children carrying the same unrooted split (n - 3 distinct).
  EXPECT_EQ(consensus.support.size(), 7u);
}

TEST(Consensus, MajoritySplitsSurviveMinorityNoise) {
  // Three trees share ((t0,t1),(t2,t3)) structure on 6 taxa; one oddball
  // disagrees. The shared splits must survive, the oddball's must not.
  const auto names = names_for(6);
  const Tree shared1 =
      Tree::parse_newick("(((t0,t1),(t2,t3)),(t4,t5));", names);
  const Tree shared2 =
      Tree::parse_newick("(((t1,t0),(t3,t2)),(t5,t4));", names);
  const Tree shared3 =
      Tree::parse_newick("((t4,t5),((t0,t1),(t2,t3)));", names);
  const Tree oddball =
      Tree::parse_newick("(((t0,t4),(t2,t5)),(t1,t3));", names);
  std::vector<Tree> trees{shared1, shared2, shared3, oddball};
  const ConsensusResult consensus = majority_rule_consensus(trees);
  // The consensus must contain the shared splits: RF distance to a shared
  // topology counts only the unresolved/extra splits, and every shared
  // split has 3/4 support.
  for (const auto& [node, support] : consensus.support) {
    EXPECT_GE(support, 0.75);
  }
  EXPECT_GE(consensus.support.size(), 3u);
  // Consensus contains no split unique to the oddball.
  const auto consensus_splits = tree_bipartitions(consensus.tree);
  const auto odd_splits = tree_bipartitions(oddball);
  const auto shared_splits = tree_bipartitions(shared1);
  for (const auto& [node, support] : consensus.support) {
    (void)node;
  }
  std::size_t odd_only_found = 0;
  for (const auto& split : odd_splits) {
    bool in_shared = false;
    for (const auto& s : shared_splits) {
      if (s == split) in_shared = true;
    }
    if (in_shared) continue;
    // A minority split may appear in the binarized tree but never in the
    // supported set.
    for (const auto& [node, support] : consensus.support) {
      (void)support;
    }
    const auto result_node_splits = bipartition_counts(
        std::vector<Tree>{consensus.tree});
    if (result_node_splits.contains(split)) ++odd_only_found;
  }
  EXPECT_EQ(odd_only_found, 0u);
}

TEST(Consensus, ErrorsOnBadInput) {
  EXPECT_THROW(majority_rule_consensus({}), std::invalid_argument);
  util::Rng rng(4);
  std::vector<Tree> mismatched{Tree::random(5, rng), Tree::random(6, rng)};
  EXPECT_THROW(majority_rule_consensus(mismatched), std::invalid_argument);
  std::vector<Tree> ok{Tree::random(5, rng)};
  EXPECT_THROW(majority_rule_consensus(ok, 0.3), std::invalid_argument);
}

TEST(Consensus, BootstrapSupportOnReference) {
  util::Rng rng(5);
  const Tree reference = Tree::random(8, rng);
  // Replicates: mostly the reference, some randomized.
  std::vector<Tree> replicates;
  for (int i = 0; i < 8; ++i) replicates.push_back(reference);
  for (int i = 0; i < 2; ++i) replicates.push_back(Tree::random(8, rng));
  const auto support = bootstrap_support(reference, replicates);
  EXPECT_EQ(support.size(), 5u);  // n - 3 internal splits
  for (const auto& [node, value] : support) {
    EXPECT_GE(value, 0.8);  // at least the 8 exact copies agree
    EXPECT_LE(value, 1.0);
  }
  EXPECT_THROW(bootstrap_support(reference, {}), std::invalid_argument);
}

TEST(Consensus, SupportDistinguishesStrongAndWeakSplits) {
  const auto names = names_for(6);
  const Tree a = Tree::parse_newick("(((t0,t1),(t2,t3)),(t4,t5));", names);
  const Tree b = Tree::parse_newick("(((t0,t1),(t2,t4)),(t3,t5));", names);
  // (t0,t1) present in both; (t2,t3) only in a.
  const auto support = bootstrap_support(a, std::vector<Tree>{a, b});
  double strong = 0.0;
  double weak = 2.0;
  for (const auto& [node, value] : support) {
    strong = std::max(strong, value);
    weak = std::min(weak, value);
  }
  EXPECT_DOUBLE_EQ(strong, 1.0);
  EXPECT_DOUBLE_EQ(weak, 0.5);
}

// ---------------------------------------------------------------------------
// Island GA

TEST(IslandGa, FindsTreeAtLeastAsGoodAsSingleSearch) {
  util::Rng rng(6);
  ModelSpec spec;
  const auto dataset = simulate_dataset(8, 600, spec, rng, 0.15);
  const PatternizedAlignment patterns(dataset.alignment);

  GaConfig single_config;
  single_config.genthresh = 40;
  single_config.seed = 11;
  GaSearch single(patterns, spec, single_config);
  single.run();

  IslandGaConfig island_config;
  island_config.island = single_config;
  island_config.n_islands = 4;
  island_config.migration_interval = 20;
  IslandGaSearch islands(patterns, spec, island_config);
  islands.run();

  EXPECT_GE(islands.best().log_likelihood,
            single.best().log_likelihood - 1.0);
  EXPECT_GT(islands.total_generations(), 0u);
}

TEST(IslandGa, ThreadCountDoesNotChangeResult) {
  util::Rng rng(7);
  ModelSpec spec;
  const auto dataset = simulate_dataset(7, 300, spec, rng, 0.2);
  const PatternizedAlignment patterns(dataset.alignment);

  IslandGaConfig config;
  config.island.genthresh = 25;
  config.island.seed = 21;
  config.n_islands = 3;
  config.migration_interval = 10;

  IslandGaSearch serial(patterns, spec, config);
  serial.run(nullptr);

  util::ThreadPool pool(4);
  IslandGaSearch parallel(patterns, spec, config);
  parallel.run(&pool);

  EXPECT_DOUBLE_EQ(serial.best().log_likelihood,
                   parallel.best().log_likelihood);
  EXPECT_EQ(serial.rounds(), parallel.rounds());
  EXPECT_EQ(serial.total_generations(), parallel.total_generations());
}

TEST(IslandGa, MigrationSpreadsGoodIndividuals) {
  util::Rng rng(8);
  ModelSpec spec;
  const auto dataset = simulate_dataset(7, 400, spec, rng, 0.15);
  const PatternizedAlignment patterns(dataset.alignment);
  IslandGaConfig config;
  config.island.genthresh = 30;
  config.island.seed = 5;
  config.n_islands = 3;
  config.migration_interval = 15;
  IslandGaSearch search(patterns, spec, config);
  search.run();
  // After convergence with ring migration, all islands should hold the
  // champion (or something very near it).
  const double champion = search.best().log_likelihood;
  for (std::size_t i = 0; i < search.n_islands(); ++i) {
    EXPECT_GE(search.island(i).best().log_likelihood, champion - 20.0);
  }
}

TEST(IslandGa, ConfigValidation) {
  util::Rng rng(9);
  const auto dataset = simulate_dataset(5, 60, ModelSpec{}, rng);
  const PatternizedAlignment patterns(dataset.alignment);
  IslandGaConfig config;
  config.n_islands = 0;
  EXPECT_THROW(IslandGaSearch(patterns, ModelSpec{}, config),
               std::invalid_argument);
  config.n_islands = 2;
  config.migration_interval = 0;
  EXPECT_THROW(IslandGaSearch(patterns, ModelSpec{}, config),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Matrix cache

TEST(MatrixCache, CachedAndUncachedAgreeExactly) {
  util::Rng rng(10);
  ModelSpec spec;
  spec.rate_het = RateHet::kGamma;
  spec.n_rate_categories = 4;
  const auto dataset = simulate_dataset(10, 300, spec, rng, 0.15);
  const PatternizedAlignment patterns(dataset.alignment);
  const SubstitutionModel model(spec);

  LikelihoodEngine plain(patterns);
  LikelihoodEngine cached(patterns);
  cached.enable_matrix_cache();

  for (int trial = 0; trial < 5; ++trial) {
    Tree tree = Tree::random(10, rng, 0.15);
    EXPECT_DOUBLE_EQ(plain.log_likelihood(tree, model),
                     cached.log_likelihood(tree, model));
  }
  EXPECT_GT(cached.cache_hits() + cached.cache_misses(), 0u);
}

TEST(MatrixCache, RepeatEvaluationsHitCache) {
  util::Rng rng(11);
  ModelSpec spec;
  const auto dataset = simulate_dataset(8, 200, spec, rng, 0.15);
  const PatternizedAlignment patterns(dataset.alignment);
  const SubstitutionModel model(spec);
  LikelihoodEngine engine(patterns);
  engine.enable_matrix_cache();
  const Tree tree = Tree::random(8, rng, 0.15);
  (void)engine.log_likelihood(tree, model);
  const std::uint64_t misses_after_first = engine.cache_misses();
  (void)engine.log_likelihood(tree, model);
  EXPECT_EQ(engine.cache_misses(), misses_after_first);  // all hits
  EXPECT_GT(engine.cache_hits(), 0u);
}

TEST(MatrixCache, RebuiltModelDoesNotReuseStaleEntries) {
  util::Rng rng(12);
  ModelSpec spec;
  spec.nuc_model = NucModel::kHKY85;
  const auto dataset = simulate_dataset(6, 150, spec, rng, 0.15);
  const PatternizedAlignment patterns(dataset.alignment);
  LikelihoodEngine engine(patterns);
  engine.enable_matrix_cache();
  const Tree tree = Tree::random(6, rng, 0.15);

  const SubstitutionModel before(spec);
  const double lnl_before = engine.log_likelihood(tree, before);
  spec.kappa = 9.0;
  const SubstitutionModel after(spec);
  const double lnl_after = engine.log_likelihood(tree, after);
  EXPECT_NE(lnl_before, lnl_after);
  // And the result matches a cache-free engine.
  LikelihoodEngine fresh(patterns);
  EXPECT_DOUBLE_EQ(lnl_after, fresh.log_likelihood(tree, after));
}

TEST(MatrixCache, CapacityBoundIsRespected) {
  util::Rng rng(13);
  ModelSpec spec;
  const auto dataset = simulate_dataset(6, 100, spec, rng, 0.15);
  const PatternizedAlignment patterns(dataset.alignment);
  const SubstitutionModel model(spec);
  LikelihoodEngine engine(patterns);
  engine.enable_matrix_cache(8);  // tiny capacity forces clears
  for (int trial = 0; trial < 20; ++trial) {
    Tree tree = Tree::random(6, rng, 0.15);
    const double a = engine.log_likelihood(tree, model);
    LikelihoodEngine fresh(patterns);
    EXPECT_DOUBLE_EQ(a, fresh.log_likelihood(tree, model));
  }
}

}  // namespace
}  // namespace lattice::phylo
