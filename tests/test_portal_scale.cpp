// Multi-tenant portal at scale: admission quotas, guest load shedding,
// fair-share queue ordering, the user-population workload generator, the
// per-user trace columns, and twin-run determinism of a 10^4-user portal
// workload (DESIGN.md §15).
#include <gtest/gtest.h>

#include <string>

#include "core/cost_model.hpp"
#include "core/lattice.hpp"
#include "core/portal.hpp"
#include "core/workload.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/fmt.hpp"

namespace lattice::core {
namespace {

LatticeConfig scale_config() {
  LatticeConfig config;
  config.scheduler.mode = SchedulingMode::kEstimateAware;
  config.scheduler_period = 30.0;
  config.seed = 17;
  return config;
}

SubmissionRequest request_for(UserId user, UserClass user_class,
                              std::size_t replicates) {
  SubmissionRequest request;
  request.user_id = user;
  request.user_class = user_class;
  request.user_email = util::format("user{}@lattice.example", user);
  request.replicates = replicates;
  request.num_taxa = 40;
  request.num_patterns = 300;
  return request;
}

struct ScaleFixture {
  LatticeSystem system;
  Portal portal;

  explicit ScaleFixture(PortalConfig portal_config = {},
                        LatticeConfig config = scale_config())
      : system(config), portal(system, portal_config) {
    grid::BatchQueueResource::Config cluster;
    cluster.nodes = 16;
    cluster.cores_per_node = 4;
    system.add_cluster("hpc", cluster);
    system.calibrate_speeds();
  }
};

TEST(PortalAdmission, EnforcesConcurrentBatchAndReplicateQuotas) {
  PortalConfig config;
  config.quota_registered.max_concurrent_batches = 2;
  config.quota_registered.max_replicates_in_flight = 50;
  ScaleFixture fx{config};

  const auto a = fx.portal.submit(request_for(7, UserClass::kRegistered, 20));
  ASSERT_TRUE(a.accepted);
  const auto b = fx.portal.submit(request_for(7, UserClass::kRegistered, 20));
  ASSERT_TRUE(b.accepted);
  EXPECT_EQ(fx.portal.active_batches(7), 2u);
  EXPECT_EQ(fx.portal.replicates_in_flight(7), 40u);

  // Third concurrent batch: over the batch quota (and 20 more replicates
  // would also breach the in-flight cap).
  const auto c = fx.portal.submit(request_for(7, UserClass::kRegistered, 20));
  EXPECT_FALSE(c.accepted);
  ASSERT_FALSE(c.problems.empty());

  // A different user is not affected by user 7's footprint.
  const auto other =
      fx.portal.submit(request_for(8, UserClass::kRegistered, 20));
  EXPECT_TRUE(other.accepted);

  // Quota capacity returns once the batches finish.
  fx.system.run_until_drained(400.0 * 86400.0);
  EXPECT_EQ(fx.portal.active_batches(7), 0u);
  EXPECT_EQ(fx.portal.replicates_in_flight(7), 0u);
  const auto later =
      fx.portal.submit(request_for(7, UserClass::kRegistered, 20));
  EXPECT_TRUE(later.accepted);
}

TEST(PortalAdmission, ReplicateQuotaCountsInFlightSum) {
  PortalConfig config;
  config.quota_power.max_replicates_in_flight = 100;
  ScaleFixture fx{config};

  ASSERT_TRUE(
      fx.portal.submit(request_for(3, UserClass::kPower, 80)).accepted);
  const auto over = fx.portal.submit(request_for(3, UserClass::kPower, 30));
  EXPECT_FALSE(over.accepted);
  const auto fits = fx.portal.submit(request_for(3, UserClass::kPower, 20));
  EXPECT_TRUE(fits.accepted);
}

TEST(PortalAdmission, ShedsGuestsAboveBacklogWatermark) {
  PortalConfig config;
  config.shed_backlog_watermark = 10;
  ScaleFixture fx{config};
  obs::MetricsRegistry metrics;
  fx.portal.set_observability(metrics);

  // Registered traffic fills the grid-level queue past the watermark
  // (nothing has been pumped yet, so every job is backlog).
  ASSERT_TRUE(fx.portal.submit(request_for(2, UserClass::kRegistered, 30))
                  .accepted);
  ASSERT_GE(fx.system.grid_backlog(), 10u);

  // Guests are shed; registered users still get in.
  const auto guest = fx.portal.submit(request_for(9, UserClass::kGuest, 2));
  EXPECT_FALSE(guest.accepted);
  ASSERT_FALSE(guest.problems.empty());
  EXPECT_NE(guest.problems[0].find("capacity"), std::string::npos);
  EXPECT_TRUE(fx.portal.submit(request_for(2, UserClass::kRegistered, 5))
                  .accepted);
  EXPECT_EQ(metrics.counter_total("portal.shed_guest"), 1u);

  // Once the backlog drains below the watermark guests are admitted again.
  fx.system.run_until_drained(400.0 * 86400.0);
  ASSERT_LT(fx.system.grid_backlog(), 10u);
  EXPECT_TRUE(
      fx.portal.submit(request_for(9, UserClass::kGuest, 2)).accepted);
  EXPECT_EQ(metrics.counter_total("portal.admit_accepted"), 3u);
  EXPECT_EQ(metrics.counter_total("portal.shed_guest"), 1u);
}

TEST(PortalAdmission, UnknownBatchIsDistinguishableFromRejected) {
  ScaleFixture fx;
  // A rejected submission never mints a batch id...
  const auto rejected =
      fx.portal.submit(request_for(4, UserClass::kRegistered, 5000));
  EXPECT_FALSE(rejected.accepted);
  EXPECT_FALSE(rejected.problems.empty());
  // ...so querying a bogus id is a lookup miss, not a rejection echo.
  const BatchProgress bogus = fx.portal.progress(777);
  EXPECT_FALSE(bogus.found);
  EXPECT_EQ(bogus.grid_jobs, 0u);

  const auto accepted =
      fx.portal.submit(request_for(4, UserClass::kRegistered, 5));
  ASSERT_TRUE(accepted.accepted);
  const BatchProgress known = fx.portal.progress(accepted.batch_id);
  EXPECT_TRUE(known.found);
  EXPECT_EQ(known.grid_jobs, accepted.grid_jobs);
}

TEST(FairShare, LateLightUserOvertakesFloodWhenOrderingIsOn) {
  // User 1 floods the portal at t=0; user 2 submits one small batch an
  // hour later. Under FIFO the late batch drains behind the flood; with
  // fair-share queue ordering the flooder's decayed usage pushes their
  // backlog behind the light user's jobs.
  const auto turnaround_of_late_batch = [](bool order_queue) {
    LatticeConfig config = scale_config();
    config.fair_share.order_queue = order_queue;
    config.fair_share.backlog_per_slot = 1.0;
    ScaleFixture fx{PortalConfig{}, config};
    // Hours-long gamma searches so the flood actually piles up a queue.
    phylo::GarliJob heavy;
    heavy.model.rate_het = phylo::RateHet::kGamma;
    for (int batch = 0; batch < 12; ++batch) {
      SubmissionRequest flood = request_for(1, UserClass::kPower, 40);
      flood.job = heavy;
      flood.num_taxa = 200;
      flood.num_patterns = 900;
      EXPECT_TRUE(fx.portal.submit(flood).accepted)
          << "flood batch " << batch;
    }
    std::uint64_t late_id = 0;
    fx.system.simulation().at(3600.0, [&fx, &late_id, heavy] {
      SubmissionRequest late = request_for(2, UserClass::kRegistered, 4);
      late.job = heavy;
      late.num_taxa = 200;
      late.num_patterns = 900;
      const auto receipt = fx.portal.submit(late);
      ASSERT_TRUE(receipt.accepted);
      late_id = receipt.batch_id;
    });
    fx.system.run_until_drained(400.0 * 86400.0);
    const BatchRecord* record = fx.portal.batch(late_id);
    EXPECT_NE(record, nullptr);
    if (record == nullptr) return 0.0;
    EXPECT_TRUE(record->done);
    return record->finished - record->submitted;
  };

  const double fifo = turnaround_of_late_batch(false);
  const double fair = turnaround_of_late_batch(true);
  EXPECT_LT(fair, fifo * 0.5)
      << "fair-share ordering should cut the late batch's turnaround "
      << "(fifo " << fifo / 3600.0 << " h, fair " << fair / 3600.0 << " h)";
}

TEST(UserPopulation, PartitionsIdsAndRespectsReplicateCap) {
  UserPopulationConfig config;
  config.guests = {9000, 0.01, 1.05, 1};
  config.registered = {900, 0.2, 1.3, 5};
  config.power = {100, 2.0, 1.6, 200};
  config.max_replicates = 2000;
  UserPopulation population(config);
  EXPECT_EQ(population.total_users(), 10000u);
  EXPECT_EQ(population.class_of(1), UserClass::kGuest);
  EXPECT_EQ(population.class_of(9000), UserClass::kGuest);
  EXPECT_EQ(population.class_of(9001), UserClass::kRegistered);
  EXPECT_EQ(population.class_of(9900), UserClass::kRegistered);
  EXPECT_EQ(population.class_of(9901), UserClass::kPower);

  GarliCostModel model;
  util::Rng rng(5);
  const auto trace = population.generate(400, model, rng);
  ASSERT_EQ(trace.size(), 400u);
  bool saw_capped = false;
  double last_arrival = 0.0;
  for (const WorkloadEntry& entry : trace) {
    ASSERT_GE(entry.user_id, 1u);
    ASSERT_LE(entry.user_id, 10000u);
    EXPECT_EQ(entry.user_class, population.class_of(entry.user_id));
    ASSERT_GE(entry.replicates, 1u);
    ASSERT_LE(entry.replicates, 2000u);
    if (entry.replicates == 2000u) saw_capped = true;
    EXPECT_GT(entry.arrival_seconds, last_arrival);
    last_arrival = entry.arrival_seconds;
  }
  // The heavy tail must actually reach the web cap now and then.
  EXPECT_TRUE(saw_capped);
}

TEST(UserPopulation, CsvRoundTripsUserColumns) {
  UserPopulation population;
  GarliCostModel model;
  util::Rng rng(6);
  const auto trace = population.generate(60, model, rng);
  const std::string csv = workload_to_csv(trace);
  const auto parsed = workload_from_csv(csv);
  ASSERT_EQ(parsed.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(parsed[i].arrival_seconds, trace[i].arrival_seconds);
    EXPECT_EQ(parsed[i].user_id, trace[i].user_id);
    EXPECT_EQ(parsed[i].user_class, trace[i].user_class);
    EXPECT_EQ(parsed[i].replicates, trace[i].replicates);
    EXPECT_EQ(parsed[i].features.num_taxa, trace[i].features.num_taxa);
  }
  // Round trip is exact, so re-serializing reproduces the bytes.
  EXPECT_EQ(workload_to_csv(parsed), csv);
}

TEST(UserPopulation, ParsesPrePortalTracesWithoutUserColumns) {
  const std::string legacy =
      "arrival_seconds,num_taxa,num_patterns,data_type,rate_het_model,"
      "num_rate_categories,subst_model_params,search_reps,genthresh,"
      "has_starting_tree,true_reference_runtime\n"
      "120.5,50,400,0,1,4,1,2,200,0,3600\n";
  const auto parsed = workload_from_csv(legacy);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].user_id, 0u);
  EXPECT_EQ(parsed[0].replicates, 0u);  // plain grid-level trace row
}

TEST(PortalScale, TwinRunsOfATenThousandUserWorkloadAreBitIdentical) {
  UserPopulationConfig pop_config;
  pop_config.guests = {9000, 0.02, 1.2, 1};
  pop_config.registered = {900, 0.3, 1.4, 2};
  pop_config.power = {100, 1.5, 1.8, 8};
  pop_config.max_replicates = 30;
  pop_config.max_expected_hours = 8.0;

  struct RunResult {
    std::string workload_csv;
    std::uint64_t completed = 0;
    std::uint64_t accepted = 0;
    std::uint64_t quota_denied = 0;
    std::uint64_t shed = 0;
    double last_completion = 0.0;
    double total_turnaround = 0.0;
  };
  const auto run_once = [&pop_config]() {
    PortalConfig portal_config;
    portal_config.quota_guest = {2, 50};
    portal_config.quota_registered = {8, 400};
    portal_config.quota_power = {16, 2000};
    portal_config.shed_backlog_watermark = 2000;
    LatticeConfig config = scale_config();
    config.scheduler_period = 300.0;
    config.fair_share.order_queue = true;
    config.fair_share.backlog_per_slot = 2.0;
    config.scheduler.fair_share_weight = 0.5;
    ScaleFixture fx{portal_config, config};
    obs::MetricsRegistry metrics;
    obs::Tracer tracer;
    fx.system.enable_observability(metrics, tracer);
    fx.portal.set_observability(metrics);

    UserPopulation population(pop_config);
    GarliCostModel model;
    util::Rng rng(29);
    const auto trace = population.generate(100, model, rng);
    submit_portal_workload(fx.portal, trace);
    // Arrivals are scheduled events: run past the last arrival so every
    // submission fires, then drain what was admitted.
    fx.system.run(trace.back().arrival_seconds + 1.0);
    fx.system.run_until_drained(600.0 * 86400.0);

    RunResult result;
    result.workload_csv = workload_to_csv(trace);
    result.completed = fx.system.metrics().completed;
    result.accepted = metrics.counter_total("portal.admit_accepted");
    result.quota_denied = metrics.counter_total("portal.admit_quota_denied");
    result.shed = metrics.counter_total("portal.shed_guest");
    result.last_completion = fx.system.metrics().last_completion;
    result.total_turnaround = fx.system.metrics().total_turnaround_seconds;
    return result;
  };

  const RunResult first = run_once();
  const RunResult second = run_once();
  EXPECT_EQ(first.workload_csv, second.workload_csv);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.accepted, second.accepted);
  EXPECT_EQ(first.quota_denied, second.quota_denied);
  EXPECT_EQ(first.shed, second.shed);
  EXPECT_EQ(first.last_completion, second.last_completion);
  EXPECT_EQ(first.total_turnaround, second.total_turnaround);
  EXPECT_GT(first.completed, 0u);
  EXPECT_GT(first.accepted, 0u);
}

}  // namespace
}  // namespace lattice::core
