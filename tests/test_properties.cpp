// Parameterized property sweeps: invariants that must hold across entire
// parameter ranges — data types, gamma shapes, taxon counts, scheduling
// modes, quorum settings — rather than at hand-picked points.
#include <gtest/gtest.h>

#include <cmath>

#include "boinc/server.hpp"
#include "core/cost_model.hpp"
#include "core/lattice.hpp"
#include "phylo/consensus.hpp"
#include "phylo/likelihood.hpp"
#include "phylo/linalg.hpp"
#include "phylo/model.hpp"
#include "phylo/parsimony.hpp"
#include "phylo/simulate.hpp"
#include "phylo/tree.hpp"
#include "util/rng.hpp"

namespace lattice {
namespace {

// ---------------------------------------------------------------------------
// Substitution-model properties over every data type.

class ModelPropertySweep
    : public ::testing::TestWithParam<phylo::DataType> {};

phylo::ModelSpec spec_for(phylo::DataType type) {
  phylo::ModelSpec spec;
  spec.data_type = type;
  if (type == phylo::DataType::kNucleotide) {
    spec.nuc_model = phylo::NucModel::kGTR;
    spec.gtr_rates = {1.1, 2.7, 0.8, 1.3, 3.1, 1.0};
    spec.base_frequencies = {0.32, 0.18, 0.21, 0.29};
  }
  return spec;
}

TEST_P(ModelPropertySweep, RowsAreStochasticAtManyTimes) {
  const phylo::SubstitutionModel model(spec_for(GetParam()));
  const std::size_t n = model.n_states();
  std::vector<double> p(n * n);
  for (const double t : {1e-6, 0.01, 0.3, 2.0, 20.0}) {
    model.transition_matrix(t, 1.0, p);
    for (std::size_t i = 0; i < n; ++i) {
      double row = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_GE(p[i * n + j], 0.0);
        row += p[i * n + j];
      }
      EXPECT_NEAR(row, 1.0, 1e-7);
    }
  }
}

TEST_P(ModelPropertySweep, DetailedBalance) {
  const phylo::SubstitutionModel model(spec_for(GetParam()));
  const std::size_t n = model.n_states();
  const auto freqs = model.frequencies();
  std::vector<double> p(n * n);
  model.transition_matrix(0.4, 1.0, p);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_NEAR(freqs[i] * p[i * n + j], freqs[j] * p[j * n + i], 1e-9);
    }
  }
}

TEST_P(ModelPropertySweep, ChapmanKolmogorovComposition) {
  const phylo::SubstitutionModel model(spec_for(GetParam()));
  const std::size_t n = model.n_states();
  std::vector<double> p1(n * n);
  std::vector<double> p2(n * n);
  std::vector<double> p3(n * n);
  std::vector<double> composed(n * n);
  model.transition_matrix(0.15, 1.0, p1);
  model.transition_matrix(0.35, 1.0, p2);
  model.transition_matrix(0.50, 1.0, p3);
  phylo::matmul(p1, p2, composed, n);
  for (std::size_t i = 0; i < n * n; ++i) {
    EXPECT_NEAR(composed[i], p3[i], 1e-8);
  }
}

TEST_P(ModelPropertySweep, MeanRateIsOne) {
  // -sum_i pi_i Q_ii == 1 implies d/dt P_ii at 0 integrates to one
  // substitution per unit time: check via small-t expansion.
  const phylo::SubstitutionModel model(spec_for(GetParam()));
  const std::size_t n = model.n_states();
  const auto freqs = model.frequencies();
  std::vector<double> p(n * n);
  const double dt = 1e-6;
  model.transition_matrix(dt, 1.0, p);
  double off_diagonal_rate = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    off_diagonal_rate += freqs[i] * (1.0 - p[i * n + i]);
  }
  EXPECT_NEAR(off_diagonal_rate / dt, 1.0, 1e-3);
}

TEST_P(ModelPropertySweep, SimulateThenScoreIsFinite) {
  util::Rng rng(77);
  const auto spec = spec_for(GetParam());
  const std::size_t sites = GetParam() == phylo::DataType::kCodon ? 60 : 200;
  const auto dataset = phylo::simulate_dataset(6, sites, spec, rng, 0.1);
  const phylo::PatternizedAlignment patterns(dataset.alignment);
  phylo::LikelihoodEngine engine(patterns);
  const double lnl =
      engine.log_likelihood(dataset.tree, phylo::SubstitutionModel(spec));
  EXPECT_TRUE(std::isfinite(lnl));
  EXPECT_LT(lnl, 0.0);
  // Parsimony agrees the data is non-degenerate.
  EXPECT_GT(phylo::parsimony_score(dataset.tree, patterns), 0.0);
}

TEST_P(ModelPropertySweep, MatrixCacheIsTransparent) {
  util::Rng rng(88);
  const auto spec = spec_for(GetParam());
  const std::size_t sites = GetParam() == phylo::DataType::kCodon ? 40 : 150;
  const auto dataset = phylo::simulate_dataset(5, sites, spec, rng, 0.1);
  const phylo::PatternizedAlignment patterns(dataset.alignment);
  phylo::LikelihoodEngine plain(patterns);
  phylo::LikelihoodEngine cached(patterns);
  cached.enable_matrix_cache();
  const phylo::SubstitutionModel model(spec);
  for (int i = 0; i < 3; ++i) {
    const phylo::Tree tree = phylo::Tree::random(5, rng, 0.2);
    EXPECT_DOUBLE_EQ(plain.log_likelihood(tree, model),
                     cached.log_likelihood(tree, model));
  }
}

INSTANTIATE_TEST_SUITE_P(AllDataTypes, ModelPropertySweep,
                         ::testing::Values(phylo::DataType::kNucleotide,
                                           phylo::DataType::kAminoAcid,
                                           phylo::DataType::kCodon));

// ---------------------------------------------------------------------------
// Discrete-gamma properties over shape values.

class GammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweep, RatesMeanOneIncreasingPositive) {
  for (const std::size_t k : {2u, 4u, 6u, 10u}) {
    const auto rates = phylo::discrete_gamma_rates(GetParam(), k);
    double mean = 0.0;
    double prev = -1.0;
    for (const double r : rates) {
      EXPECT_GT(r, 0.0);
      EXPECT_GT(r, prev);
      prev = r;
      mean += r;
    }
    EXPECT_NEAR(mean / static_cast<double>(k), 1.0, 1e-8);
  }
}

TEST_P(GammaSweep, SpreadShrinksWithAlpha) {
  const auto rates = phylo::discrete_gamma_rates(GetParam(), 4);
  const double spread = rates.back() - rates.front();
  const auto tighter = phylo::discrete_gamma_rates(GetParam() * 4.0, 4);
  EXPECT_LT(tighter.back() - tighter.front(), spread);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaSweep,
                         ::testing::Values(0.05, 0.2, 0.5, 1.0, 3.0, 10.0));

// ---------------------------------------------------------------------------
// Tree invariants over sizes.

class TreeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeSweep, RandomTreesValidAndSerializable) {
  util::Rng rng(GetParam() * 13 + 1);
  const phylo::Tree tree = phylo::Tree::random(GetParam(), rng);
  EXPECT_TRUE(tree.check_valid());
  const phylo::Tree restored =
      phylo::Tree::deserialize_structure(tree.serialize_structure());
  EXPECT_EQ(phylo::Tree::robinson_foulds(tree, restored), 0u);
  EXPECT_NEAR(tree.tree_length(), restored.tree_length(), 1e-9);
}

TEST_P(TreeSweep, EveryNniMovesRfByTwo) {
  util::Rng rng(GetParam() * 17 + 3);
  const phylo::Tree tree = phylo::Tree::random(GetParam(), rng);
  for (const int node : tree.internal_edge_nodes()) {
    for (const int variant : {0, 1}) {
      phylo::Tree mutated = tree;
      mutated.nni(node, variant);
      EXPECT_TRUE(mutated.check_valid());
      EXPECT_EQ(phylo::Tree::robinson_foulds(tree, mutated), 2u);
    }
  }
}

TEST_P(TreeSweep, SprKeepsLeafSetAndValidity) {
  util::Rng rng(GetParam() * 19 + 5);
  phylo::Tree tree = phylo::Tree::random(GetParam(), rng);
  int applied = 0;
  for (int attempt = 0; attempt < 60 && applied < 10; ++attempt) {
    const int prune = static_cast<int>(rng.below(tree.n_nodes()));
    const int graft = static_cast<int>(rng.below(tree.n_nodes()));
    if (tree.spr(prune, graft)) {
      ++applied;
      EXPECT_TRUE(tree.check_valid());
      EXPECT_EQ(tree.n_leaves(), GetParam());
    }
  }
  EXPECT_GT(applied, 0);
}

TEST_P(TreeSweep, ConsensusOfOneTreeIsItself) {
  util::Rng rng(GetParam() * 23 + 7);
  const phylo::Tree tree = phylo::Tree::random(GetParam(), rng);
  const auto consensus =
      phylo::majority_rule_consensus(std::vector<phylo::Tree>{tree});
  EXPECT_EQ(phylo::Tree::robinson_foulds(consensus.tree, tree), 0u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeSweep,
                         ::testing::Values(4, 6, 9, 16, 33, 70));

// ---------------------------------------------------------------------------
// Grid completes the same workload under every scheduling mode.

class ModeSweep : public ::testing::TestWithParam<core::SchedulingMode> {};

TEST_P(ModeSweep, MixedWorkloadDrains) {
  core::LatticeConfig config;
  config.scheduler.mode = GetParam();
  config.seed = 31;
  core::LatticeSystem system(config);
  grid::BatchQueueResource::Config cluster;
  cluster.nodes = 8;
  cluster.cores_per_node = 2;
  system.add_cluster("hpc", cluster);
  grid::CondorPool::Config condor;
  condor.machines = 20;
  condor.seed = 3;
  system.add_condor_pool("condor", condor);
  system.calibrate_speeds();
  if (GetParam() == core::SchedulingMode::kEstimateAware) {
    core::RuntimeEstimator::Config est;
    est.forest.n_trees = 40;
    est.retrain_every = 0;
    system.estimator() = core::RuntimeEstimator(est);
    util::Rng train_rng(5);
    system.estimator().train(
        core::generate_corpus(80, system.cost_model(), train_rng));
  }
  util::Rng rng(7);
  for (int i = 0; i < 25; ++i) {
    core::GarliFeatures f = core::random_features(rng);
    // Keep inside a simulable horizon for the slowest mode.
    f.search_reps = 1;
    system.submit_garli_job(f);
  }
  system.run_until_drained(400.0 * 86400.0);
  EXPECT_EQ(system.metrics().completed + system.metrics().abandoned, 25u);
  EXPECT_GE(system.metrics().completed, 23u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ModeSweep,
    ::testing::Values(core::SchedulingMode::kRoundRobin,
                      core::SchedulingMode::kLoadOnly,
                      core::SchedulingMode::kEstimateAware,
                      core::SchedulingMode::kOracle));

// ---------------------------------------------------------------------------
// BOINC validates under every quorum setting.

class QuorumSweep : public ::testing::TestWithParam<int> {};

TEST_P(QuorumSweep, WorkunitsValidateAndCreditFollowsQuorum) {
  sim::Simulation sim;
  boinc::BoincPoolConfig config;
  config.hosts = 40;
  config.mean_on_hours = 10000.0;
  config.mean_off_hours = 0.001;
  config.mean_lifetime_days = 1e6;
  config.host_error_probability = 0.05;
  config.min_quorum = GetParam();
  config.target_nresults = GetParam();
  config.max_total_results = 16;
  config.seed = 41;
  boinc::BoincServer server(sim, "boinc", config);
  int completed = 0;
  server.set_completion_callback(
      [&](grid::GridJob&, const grid::JobOutcome& outcome) {
        if (outcome.completed()) ++completed;
      });
  std::vector<grid::GridJob> jobs(8);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    jobs[i].id = i + 1;
    jobs[i].true_reference_runtime = 1800.0;
    server.submit(jobs[i]);
  }
  sim.run(60.0 * 86400.0);
  EXPECT_EQ(completed, 8);
  // Credit: at least quorum-many grants per workunit.
  EXPECT_GE(server.total_credit(),
            8.0 * GetParam() * 1800.0 / 100.0 * 0.99);
}

INSTANTIATE_TEST_SUITE_P(Quorums, QuorumSweep, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// Cost model: monotonicity sweeps.

class CostMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(CostMonotonicity, RuntimeGrowsAlongEveryNumericPredictor) {
  const core::GarliCostModel model;
  core::GarliFeatures base;
  base.num_taxa = 50;
  base.num_patterns = 400;
  base.genthresh = 400;
  base.search_reps = 2;
  auto bumped = base;
  switch (GetParam()) {
    case 0: bumped.num_taxa *= 2; break;
    case 1: bumped.num_patterns *= 2; break;
    case 2: bumped.search_reps += 1; break;
    case 3: bumped.genthresh *= 2; break;
    case 4: bumped.subst_model_params += 4; break;
  }
  EXPECT_GT(model.expected_runtime(bumped), model.expected_runtime(base));
}

INSTANTIATE_TEST_SUITE_P(Predictors, CostMonotonicity,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace lattice
