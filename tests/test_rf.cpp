// Tests for the random-forest library: dataset validation, CART splits,
// forest accuracy (OOB), and both importance measures. Includes the
// parameterized sweeps that back the paper's modeling choices (mtry,
// forest size).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "rf/dataset.hpp"
#include "rf/forest.hpp"
#include "rf/tree.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace lattice::rf {
namespace {

Dataset make_linear_dataset(std::size_t n, util::Rng& rng,
                            double noise_sd = 0.0) {
  Dataset data({{"x1", FeatureKind::kNumeric, {}},
                {"x2", FeatureKind::kNumeric, {}}});
  for (std::size_t i = 0; i < n; ++i) {
    const double x1 = rng.uniform(0.0, 1.0);
    const double x2 = rng.uniform(0.0, 1.0);
    const double y = 3.0 * x1 + rng.normal(0.0, noise_sd);
    data.add_row(std::vector<double>{x1, x2}, y);
  }
  return data;
}

/// Friedman #1 benchmark function restricted to 5 informative + noise vars.
Dataset make_friedman(std::size_t n, std::size_t extra_noise_vars,
                      util::Rng& rng, double noise_sd = 0.1) {
  std::vector<FeatureSpec> specs;
  for (std::size_t f = 0; f < 5 + extra_noise_vars; ++f) {
    specs.push_back({"x" + std::to_string(f), FeatureKind::kNumeric, {}});
  }
  Dataset data(std::move(specs));
  std::vector<double> row(5 + extra_noise_vars);
  for (std::size_t i = 0; i < n; ++i) {
    for (double& v : row) v = rng.uniform(0.0, 1.0);
    const double y = 10.0 * std::sin(std::numbers::pi * row[0] * row[1]) +
                     20.0 * (row[2] - 0.5) * (row[2] - 0.5) + 10.0 * row[3] +
                     5.0 * row[4] + rng.normal(0.0, noise_sd);
    data.add_row(row, y);
  }
  return data;
}

TEST(Dataset, RejectsArityMismatch) {
  Dataset data({{"a", FeatureKind::kNumeric, {}}});
  EXPECT_THROW(data.add_row(std::vector<double>{1.0, 2.0}, 0.0),
               std::invalid_argument);
}

TEST(Dataset, RejectsBadCategoricalLevel) {
  Dataset data({{"c", FeatureKind::kCategorical, {"a", "b"}}});
  EXPECT_THROW(data.add_row(std::vector<double>{2.0}, 0.0),
               std::invalid_argument);
  EXPECT_THROW(data.add_row(std::vector<double>{0.5}, 0.0),
               std::invalid_argument);
  data.add_row(std::vector<double>{1.0}, 0.0);
  EXPECT_EQ(data.n_rows(), 1u);
}

TEST(Dataset, RejectsTooManyLevels) {
  std::vector<std::string> levels(65, "x");
  EXPECT_THROW(Dataset({{"c", FeatureKind::kCategorical, levels}}),
               std::invalid_argument);
}

TEST(Dataset, FeatureIndexLookup) {
  Dataset data({{"a", FeatureKind::kNumeric, {}},
                {"b", FeatureKind::kNumeric, {}}});
  EXPECT_EQ(data.feature_index("b"), 1u);
  EXPECT_FALSE(data.feature_index("zzz").has_value());
}

TEST(Dataset, RowMaterialization) {
  Dataset data({{"a", FeatureKind::kNumeric, {}},
                {"b", FeatureKind::kNumeric, {}}});
  data.add_row(std::vector<double>{1.0, 2.0}, 3.0);
  EXPECT_EQ(data.row(0), (std::vector<double>{1.0, 2.0}));
  EXPECT_DOUBLE_EQ(data.target(0), 3.0);
}

TEST(RegressionTree, FitsStepFunctionExactly) {
  // y = 1{x > 0.5}: a single split should capture it.
  Dataset data({{"x", FeatureKind::kNumeric, {}}});
  for (int i = 0; i < 100; ++i) {
    const double x = i / 100.0;
    data.add_row(std::vector<double>{x}, x > 0.5 ? 1.0 : 0.0);
  }
  std::vector<std::size_t> rows(100);
  for (std::size_t i = 0; i < 100; ++i) rows[i] = i;
  util::Rng rng(1);
  RegressionTree tree;
  TreeParams params;
  params.mtry = 1;
  tree.fit(data, rows, params, rng);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.2}), 0.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.9}), 1.0);
}

TEST(RegressionTree, MinLeafRespected) {
  util::Rng rng(2);
  Dataset data = make_linear_dataset(200, rng, 0.1);
  std::vector<std::size_t> rows(200);
  for (std::size_t i = 0; i < 200; ++i) rows[i] = i;
  TreeParams params;
  params.min_leaf = 50;
  params.mtry = 2;
  RegressionTree tree;
  tree.fit(data, rows, params, rng);
  EXPECT_LE(tree.leaf_count(), 4u);
}

TEST(RegressionTree, MaxDepthRespected) {
  util::Rng rng(3);
  Dataset data = make_linear_dataset(500, rng, 0.0);
  std::vector<std::size_t> rows(500);
  for (std::size_t i = 0; i < 500; ++i) rows[i] = i;
  TreeParams params;
  params.max_depth = 3;
  params.min_leaf = 1;
  params.mtry = 2;
  RegressionTree tree;
  tree.fit(data, rows, params, rng);
  EXPECT_LE(tree.depth(), 4u);  // root at depth 1
}

TEST(RegressionTree, ConstantTargetIsSingleLeaf) {
  Dataset data({{"x", FeatureKind::kNumeric, {}}});
  for (int i = 0; i < 50; ++i) {
    data.add_row(std::vector<double>{static_cast<double>(i)}, 7.0);
  }
  std::vector<std::size_t> rows(50);
  for (std::size_t i = 0; i < 50; ++i) rows[i] = i;
  util::Rng rng(4);
  RegressionTree tree;
  tree.fit(data, rows, TreeParams{}, rng);
  EXPECT_EQ(tree.leaf_count(), 1u);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{123.0}), 7.0);
}

TEST(RegressionTree, CategoricalSplitSeparatesLevels) {
  Dataset data({{"c", FeatureKind::kCategorical, {"a", "b", "c", "d"}}});
  util::Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double level = static_cast<double>(i % 4);
    // Levels a,c -> 0; b,d -> 10 (non-contiguous: needs subset split).
    const double y = (i % 4 == 1 || i % 4 == 3) ? 10.0 : 0.0;
    data.add_row(std::vector<double>{level}, y);
  }
  std::vector<std::size_t> rows(200);
  for (std::size_t i = 0; i < 200; ++i) rows[i] = i;
  TreeParams params;
  params.mtry = 1;
  RegressionTree tree;
  tree.fit(data, rows, params, rng);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{0.0}), 0.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{1.0}), 10.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{2.0}), 0.0);
  EXPECT_DOUBLE_EQ(tree.predict(std::vector<double>{3.0}), 10.0);
}

TEST(RandomForest, RejectsDegenerateInputs) {
  Dataset tiny({{"x", FeatureKind::kNumeric, {}}});
  tiny.add_row(std::vector<double>{1.0}, 1.0);
  RandomForest forest;
  EXPECT_THROW(forest.fit(tiny, ForestParams{}), std::invalid_argument);

  Dataset ok = tiny;
  ok.add_row(std::vector<double>{2.0}, 2.0);
  ForestParams zero;
  zero.n_trees = 0;
  EXPECT_THROW(forest.fit(ok, zero), std::invalid_argument);
}

TEST(RandomForest, LearnsLinearSignal) {
  util::Rng rng(7);
  Dataset data = make_linear_dataset(400, rng, 0.05);
  RandomForest forest;
  ForestParams params;
  params.n_trees = 100;
  params.seed = 3;
  forest.fit(data, params);
  EXPECT_GT(forest.variance_explained(), 0.85);
  // Predictions should track the signal on fresh points.
  EXPECT_NEAR(forest.predict(std::vector<double>{0.5, 0.5}), 1.5, 0.35);
  EXPECT_NEAR(forest.predict(std::vector<double>{0.9, 0.1}), 2.7, 0.45);
}

TEST(RandomForest, DeterministicForSeed) {
  util::Rng rng(8);
  Dataset data = make_friedman(150, 0, rng);
  ForestParams params;
  params.n_trees = 30;
  params.seed = 11;
  RandomForest a;
  a.fit(data, params);
  RandomForest b;
  b.fit(data, params);
  EXPECT_DOUBLE_EQ(a.oob_mse(), b.oob_mse());
  EXPECT_DOUBLE_EQ(a.predict(data.row(0)), b.predict(data.row(0)));
}

TEST(RandomForest, ParallelTrainingMatchesSerial) {
  util::Rng rng(9);
  Dataset data = make_friedman(120, 0, rng);
  ForestParams params;
  params.n_trees = 16;
  params.seed = 5;
  RandomForest serial;
  serial.fit(data, params);
  util::ThreadPool pool(4);
  RandomForest parallel;
  parallel.fit(data, params, &pool);
  EXPECT_DOUBLE_EQ(serial.oob_mse(), parallel.oob_mse());
}

TEST(RandomForest, OobPredictionsMostlyPresent) {
  util::Rng rng(10);
  Dataset data = make_friedman(100, 0, rng);
  ForestParams params;
  params.n_trees = 50;
  RandomForest forest;
  forest.fit(data, params);
  const auto oob = forest.oob_predictions();
  std::size_t present = 0;
  for (double p : oob) {
    if (!std::isnan(p)) ++present;
  }
  // P(in every bag of 50 trees) is astronomically small.
  EXPECT_EQ(present, oob.size());
}

TEST(RandomForest, FriedmanAccuracy) {
  util::Rng rng(12);
  Dataset data = make_friedman(500, 0, rng);
  ForestParams params;
  params.n_trees = 200;
  params.tree.mtry = 3;
  RandomForest forest;
  forest.fit(data, params);
  EXPECT_GT(forest.variance_explained(), 0.80);
}

TEST(RandomForest, ImportanceRanksInformativeAboveNoise) {
  util::Rng rng(13);
  Dataset data = make_friedman(400, 3, rng);
  ForestParams params;
  params.n_trees = 150;
  RandomForest forest;
  forest.fit(data, params);
  util::Rng imp_rng(99);
  const auto importance = forest.importance(imp_rng);
  ASSERT_EQ(importance.size(), 8u);
  // x3 (coefficient 10) must beat every pure-noise feature on both
  // measures.
  for (std::size_t noise = 5; noise < 8; ++noise) {
    EXPECT_GT(importance[3].inc_mse_pct, importance[noise].inc_mse_pct);
    EXPECT_GT(importance[3].inc_node_purity,
              importance[noise].inc_node_purity);
  }
  // Noise features should have near-zero permutation importance.
  for (std::size_t noise = 5; noise < 8; ++noise) {
    EXPECT_LT(importance[noise].inc_mse_pct, 10.0);
  }
}

TEST(RandomForest, CategoricalFeatureSupported) {
  util::Rng rng(14);
  Dataset data({{"c", FeatureKind::kCategorical, {"low", "high"}},
                {"x", FeatureKind::kNumeric, {}}});
  for (int i = 0; i < 300; ++i) {
    const double c = rng.bernoulli(0.5) ? 1.0 : 0.0;
    const double x = rng.uniform(0.0, 1.0);
    data.add_row(std::vector<double>{c, x}, c * 5.0 + rng.normal(0.0, 0.1));
  }
  RandomForest forest;
  ForestParams params;
  params.n_trees = 60;
  params.tree.mtry = 2;
  forest.fit(data, params);
  EXPECT_NEAR(forest.predict(std::vector<double>{1.0, 0.5}), 5.0, 0.5);
  EXPECT_NEAR(forest.predict(std::vector<double>{0.0, 0.5}), 0.0, 0.5);
}

// Parameterized sweep: accuracy should be stable across a wide range of
// mtry and improve (or plateau) with more trees — Breiman's robustness
// claims that justify the paper's single-tuning-parameter usage.
class ForestSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ForestSizeSweep, VarianceExplainedGrowsWithTrees) {
  util::Rng rng(15);
  Dataset data = make_friedman(300, 0, rng);
  ForestParams params;
  params.n_trees = GetParam();
  params.seed = 2;
  RandomForest forest;
  forest.fit(data, params);
  EXPECT_GT(forest.variance_explained(), GetParam() >= 100 ? 0.75 : 0.55);
}

INSTANTIATE_TEST_SUITE_P(TreeCounts, ForestSizeSweep,
                         ::testing::Values(10, 50, 150));

class MtrySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MtrySweep, AccuracyRobustAcrossMtry) {
  util::Rng rng(16);
  Dataset data = make_friedman(300, 0, rng);
  ForestParams params;
  params.n_trees = 100;
  params.tree.mtry = GetParam();
  RandomForest forest;
  forest.fit(data, params);
  EXPECT_GT(forest.variance_explained(), 0.70);
}

INSTANTIATE_TEST_SUITE_P(MtryValues, MtrySweep, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace lattice::rf
