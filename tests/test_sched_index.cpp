// Decision-identity property tests for the scheduler scalability pass
// (ISSUE 4): the indexed structures must change complexity, never
// decisions.
//
//   1. MDS capability index vs linear directory scan — identical eligible
//      sets in identical order, and MetaScheduler::choose vs choose_linear
//      make identical placements over randomized inventories and job
//      streams in every scheduling mode (including round-robin, whose
//      cursor makes decisions order-sensitive).
//   2. Deadline min-heap transitioner vs the retained full-sweep oracle —
//      twin identically-seeded BOINC scenarios, one per path, must produce
//      bit-identical workunit/result histories and counters, including
//      under host churn, errors, and synchronous reissue dispatches.
//   3. FeederQueue — FIFO take/skip/drop semantics matching the seed's
//      mid-deque scan.
//   4. MDS rank index (ISSUE 6) — best_ranked streams vs a linear
//      (rank key, name)-argmin reference under randomized speed updates,
//      host churn (TTL staleness), and capability re-filing.
//   5. Sharded pool calendar (ISSUE 6) — twin identically-seeded churny
//      BOINC scenarios at --shards 1 vs 2 vs 4 must be bit-identical in
//      event counts and the full server fingerprint.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "boinc/feeder.hpp"
#include "boinc/server.hpp"
#include "core/metascheduler.hpp"
#include "core/speed.hpp"
#include "grid/job.hpp"
#include "grid/mds.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace lattice {
namespace {

// ---------------------------------------------------------------------
// FeederQueue semantics
// ---------------------------------------------------------------------

TEST(FeederQueue, TakesInFifoOrder) {
  boinc::FeederQueue queue;
  queue.enqueue(1);
  queue.enqueue(2);
  queue.enqueue(3);
  std::uint64_t taken = 0;
  EXPECT_TRUE(queue.scan([&](std::uint64_t id) {
    taken = id;
    return boinc::FeederQueue::Probe::kTake;
  }));
  EXPECT_EQ(taken, 1u);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(FeederQueue, SkippedEntriesKeepTheirPositions) {
  boinc::FeederQueue queue;
  for (std::uint64_t id = 1; id <= 5; ++id) queue.enqueue(id);
  // Skip 1 and 2, take 3: the queue must read 1, 2, 4, 5 afterwards.
  EXPECT_TRUE(queue.scan([](std::uint64_t id) {
    return id < 3 ? boinc::FeederQueue::Probe::kSkip
                  : boinc::FeederQueue::Probe::kTake;
  }));
  std::vector<std::uint64_t> remaining;
  while (!queue.empty()) {
    queue.scan([&](std::uint64_t id) {
      remaining.push_back(id);
      return boinc::FeederQueue::Probe::kDrop;
    });
  }
  EXPECT_EQ(remaining, (std::vector<std::uint64_t>{1, 2, 4, 5}));
}

TEST(FeederQueue, DropRemovesAndScanReportsNoTake) {
  boinc::FeederQueue queue;
  queue.enqueue(7);
  queue.enqueue(8);
  EXPECT_FALSE(queue.scan([](std::uint64_t) {
    return boinc::FeederQueue::Probe::kDrop;
  }));
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.scan([](std::uint64_t) {
    return boinc::FeederQueue::Probe::kTake;
  }));
}

TEST(FeederQueue, AllSkippedLeavesQueueIntact) {
  boinc::FeederQueue queue;
  for (std::uint64_t id = 1; id <= 4; ++id) queue.enqueue(id);
  EXPECT_FALSE(queue.scan([](std::uint64_t) {
    return boinc::FeederQueue::Probe::kSkip;
  }));
  EXPECT_EQ(queue.size(), 4u);
  std::uint64_t front = 0;
  queue.scan([&](std::uint64_t id) {
    front = id;
    return boinc::FeederQueue::Probe::kTake;
  });
  EXPECT_EQ(front, 1u);  // original order preserved
}

// ---------------------------------------------------------------------
// Matchmaking index vs linear scan
// ---------------------------------------------------------------------

const std::vector<grid::PlatformSpec> kPlatformPool = {
    {grid::OsType::kLinux, grid::Arch::kX86_64},
    {grid::OsType::kLinux, grid::Arch::kX86},
    {grid::OsType::kWindows, grid::Arch::kX86_64},
    {grid::OsType::kMacOS, grid::Arch::kPowerPC},
};
const std::vector<std::string> kSoftwarePool = {"garli", "java", "blast",
                                                "hmmer"};

grid::ResourceInfo random_resource(util::Rng& rng, std::size_t index) {
  grid::ResourceInfo info;
  info.name = "res" + std::to_string(index);
  info.kind = static_cast<grid::ResourceKind>(rng.below(4));
  info.total_slots = 1 + rng.below(64);
  info.free_slots = rng.below(info.total_slots + 1);
  info.queued_jobs = rng.below(100);
  info.node_memory_gb = 1.0 + static_cast<double>(rng.below(16));
  for (const grid::PlatformSpec& platform : kPlatformPool) {
    if (rng.bernoulli(0.5)) info.platforms.push_back(platform);
  }
  if (info.platforms.empty()) info.platforms.push_back(kPlatformPool[0]);
  for (const std::string& software : kSoftwarePool) {
    if (rng.bernoulli(0.4)) info.software.push_back(software);
  }
  info.mpi_capable = rng.bernoulli(0.3);
  info.stable = rng.bernoulli(0.5);
  return info;
}

grid::GridJob random_job(util::Rng& rng, std::uint64_t id) {
  grid::GridJob job;
  job.id = id;
  for (const grid::PlatformSpec& platform : kPlatformPool) {
    if (rng.bernoulli(0.3)) job.requirements.platforms.push_back(platform);
  }
  for (const std::string& software : kSoftwarePool) {
    if (rng.bernoulli(0.2)) job.requirements.software.push_back(software);
  }
  job.requirements.needs_mpi = rng.bernoulli(0.2);
  job.requirements.min_memory_gb = static_cast<double>(rng.below(10));
  job.true_reference_runtime = rng.uniform(600.0, 40.0 * 3600.0);
  if (rng.bernoulli(0.8)) {
    job.estimated_reference_runtime =
        job.true_reference_runtime * rng.uniform(0.5, 2.0);
  }
  return job;
}

/// Randomized inventory with a staleness mix: all resources report at t=0,
/// half keep reporting, and the clock advances past the TTL so the other
/// half is offline at query time.
void build_directory(sim::Simulation& sim, grid::MdsDirectory& mds,
                     util::Rng& rng, std::size_t resources) {
  std::vector<grid::ResourceInfo> inventory;
  inventory.reserve(resources);
  for (std::size_t i = 0; i < resources; ++i) {
    inventory.push_back(random_resource(rng, i));
  }
  for (const grid::ResourceInfo& info : inventory) mds.report(info);
  // Advance beyond the TTL, re-reporting only the even-indexed half.
  const double later = mds.ttl() + 100.0;
  sim.at(later, [&mds, inventory] {
    for (std::size_t i = 0; i < inventory.size(); i += 2) {
      mds.report(inventory[i]);
    }
  });
  sim.run();
}

TEST(MdsIndex, MatchesLinearScanOverRandomInventories) {
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    util::Rng rng(1000 + trial);
    sim::Simulation sim;
    grid::MdsDirectory mds(sim);
    build_directory(sim, mds, rng, 30 + trial);
    ASSERT_GT(mds.capability_classes(), 1u);

    for (int q = 0; q < 50; ++q) {
      const grid::GridJob job = random_job(rng, static_cast<std::uint64_t>(q));
      std::vector<const grid::MdsEntry*> indexed;
      std::vector<const grid::MdsEntry*> linear;
      grid::MdsMatchStats indexed_stats;
      grid::MdsMatchStats linear_stats;
      mds.match_online(job.requirements, indexed, &indexed_stats);
      mds.match_online_linear(job.requirements, linear, &linear_stats);
      ASSERT_EQ(indexed.size(), linear.size());
      for (std::size_t i = 0; i < indexed.size(); ++i) {
        EXPECT_EQ(indexed[i], linear[i]) << "entry order diverged at " << i;
      }
      EXPECT_EQ(indexed_stats.eligible, linear_stats.eligible);
      // The point of the index: never examine more entries than the scan.
      EXPECT_LE(indexed_stats.candidates_scanned,
                linear_stats.candidates_scanned);
    }
  }
}

TEST(MetaScheduler, IndexedAndLinearChooseIdenticallyInEveryMode) {
  const core::SchedulingMode modes[] = {
      core::SchedulingMode::kRoundRobin, core::SchedulingMode::kLoadOnly,
      core::SchedulingMode::kEstimateAware, core::SchedulingMode::kOracle};
  for (const core::SchedulingMode mode : modes) {
    for (std::uint64_t trial = 0; trial < 5; ++trial) {
      util::Rng rng(7000 + trial);
      sim::Simulation sim;
      grid::MdsDirectory mds(sim);
      build_directory(sim, mds, rng, 25);
      core::SpeedCalibrator speeds(3600.0);
      for (std::size_t i = 0; i < 25; i += 3) {
        const double runtime = rng.uniform(1200.0, 7200.0);
        const std::string name = "res" + std::to_string(i);
        speeds.calibrate(name, {{runtime}});
        mds.set_speed(name, speeds.speed_or_default(name));
      }
      core::SchedulerPolicy policy;
      policy.mode = mode;
      // Separate instances: both paths advance their own round-robin
      // cursor, so interleaving calls on one scheduler would trivially
      // diverge.
      core::MetaScheduler indexed(mds, speeds, policy);
      core::MetaScheduler linear(mds, speeds, policy);
      for (std::uint64_t j = 0; j < 100; ++j) {
        const grid::GridJob job = random_job(rng, j);
        const std::optional<std::string> via_index = indexed.choose(job);
        const std::optional<std::string> via_scan = linear.choose_linear(job);
        ASSERT_EQ(via_index, via_scan)
            << "mode " << scheduling_mode_name(mode) << " trial " << trial
            << " job " << j;
      }
    }
  }
}

TEST(MetaScheduler, FairShareKeepsIndexedAndLinearChoiceIdentical) {
  // Fair-share inflates the runtime estimate by a per-decision-constant
  // factor before either decision path ranks with it, so the indexed
  // stream and the linear oracle must still agree bit-for-bit — with
  // random usage odometers, random user ids, and the weight turned up.
  const core::SchedulingMode modes[] = {core::SchedulingMode::kEstimateAware,
                                        core::SchedulingMode::kOracle};
  for (const core::SchedulingMode mode : modes) {
    for (std::uint64_t trial = 0; trial < 5; ++trial) {
      util::Rng rng(9100 + trial);
      sim::Simulation sim;
      grid::MdsDirectory mds(sim);
      build_directory(sim, mds, rng, 25);
      core::SpeedCalibrator speeds(3600.0);
      for (std::size_t i = 0; i < 25; i += 3) {
        const double runtime = rng.uniform(1200.0, 7200.0);
        const std::string name = "res" + std::to_string(i);
        speeds.calibrate(name, {{runtime}});
        mds.set_speed(name, speeds.speed_or_default(name));
      }
      core::FairShareLedger ledger{core::FairShareConfig{}};
      for (core::UserId user = 1; user <= 8; ++user) {
        ledger.charge(user, rng.uniform(0.0, 400.0 * 3600.0));
      }
      core::SchedulerPolicy policy;
      policy.mode = mode;
      policy.fair_share_weight = rng.uniform(0.01, 2.0);
      core::MetaScheduler indexed(mds, speeds, policy);
      core::MetaScheduler linear(mds, speeds, policy);
      indexed.set_fair_share(&ledger);
      linear.set_fair_share(&ledger);
      for (std::uint64_t j = 0; j < 100; ++j) {
        grid::GridJob job = random_job(rng, j);
        job.user_id = rng.below(9);  // 0 (unattributed) through 8
        const std::optional<std::string> via_index = indexed.choose(job);
        const std::optional<std::string> via_scan = linear.choose_linear(job);
        ASSERT_EQ(via_index, via_scan)
            << "mode " << scheduling_mode_name(mode) << " trial " << trial
            << " job " << j << " user " << job.user_id;
      }
    }
  }
}

// ---------------------------------------------------------------------
// Rank index (best_ranked) vs linear argmin reference
// ---------------------------------------------------------------------

/// Linear reference for best_ranked: the eligible set in name order (via
/// the retained linear-scan oracle), filtered by `accept`, then the strict
/// (rank key, name) argmin — strict `<` over the name-ordered list keeps
/// the first minimum, which IS the (key, name) lexicographic minimum.
template <typename Accept>
const grid::MdsEntry* best_ranked_linear(const grid::MdsDirectory& mds,
                                         const grid::JobRequirements& req,
                                         grid::RankOrder order,
                                         Accept&& accept) {
  std::vector<const grid::MdsEntry*> eligible;
  mds.match_online_linear(req, eligible);
  const grid::MdsEntry* best = nullptr;
  double best_key = 0.0;
  for (const grid::MdsEntry* entry : eligible) {
    if (!accept(*entry)) continue;
    const double key =
        order == grid::RankOrder::kLoad
            ? grid::MdsDirectory::rank_key_load(entry->info)
            : grid::MdsDirectory::rank_key_eta(entry->info, entry->speed,
                                               mds.rank_load_weight());
    if (best == nullptr || key < best_key) {
      best = entry;
      best_key = key;
    }
  }
  return best;
}

TEST(MdsRankIndex, BestRankedMatchesLinearUnderMutation) {
  for (std::uint64_t trial = 0; trial < 10; ++trial) {
    util::Rng rng(3000 + trial);
    sim::Simulation sim;
    grid::MdsDirectory mds(sim);
    const std::size_t resources = 20 + trial;
    std::vector<grid::ResourceInfo> inventory;
    inventory.reserve(resources);
    for (std::size_t i = 0; i < resources; ++i) {
      inventory.push_back(random_resource(rng, i));
      mds.report(inventory.back());
    }
    double now = 0.0;
    for (int round = 0; round < 25; ++round) {
      // One randomized mutation per round, exercising every maintenance
      // edge of the rank index.
      switch (rng.below(4)) {
        case 0: {  // speed calibration re-files the eta order
          const std::size_t i = rng.below(resources);
          mds.set_speed(inventory[i].name, rng.uniform(0.3, 3.0));
          break;
        }
        case 1: {  // capability change forces a class re-file
          grid::ResourceInfo& info = inventory[rng.below(resources)];
          info.mpi_capable = !info.mpi_capable;
          if (rng.bernoulli(0.5)) {
            info.software = info.software.empty()
                                ? std::vector<std::string>{"java"}
                                : std::vector<std::string>{};
          }
          mds.report(info);
          break;
        }
        case 2: {  // heartbeat with moved load fields re-ranks lazily
          grid::ResourceInfo& info = inventory[rng.below(resources)];
          info.free_slots = rng.below(info.total_slots + 1);
          info.queued_jobs = rng.below(100);
          mds.report(info);
          break;
        }
        default: {  // churn: advance time, refresh a random subset only —
                    // the rest drift toward (or past) the TTL unindexed
          now += mds.ttl() * rng.uniform(0.2, 0.7);
          sim.at(now, [] {});
          sim.run();
          for (std::size_t i = 0; i < resources; ++i) {
            if (rng.bernoulli(0.6)) mds.report(inventory[i]);
          }
          break;
        }
      }
      for (int q = 0; q < 8; ++q) {
        const grid::GridJob job =
            random_job(rng, static_cast<std::uint64_t>(q));
        // A job-dependent accept predicate with a real rejection prefix:
        // sometimes stable-only, sometimes a speed floor, sometimes all.
        const int which = static_cast<int>(rng.below(3));
        const double floor = rng.uniform(0.5, 1.5);
        const auto accept = [&](const grid::MdsEntry& entry) {
          if (which == 0) return true;
          if (which == 1) return entry.info.stable;
          return entry.speed >= floor;
        };
        for (const grid::RankOrder order :
             {grid::RankOrder::kLoad, grid::RankOrder::kEta}) {
          const grid::MdsEntry* expected =
              best_ranked_linear(mds, job.requirements, order, accept);
          grid::MdsMatchStats stats;
          const grid::MdsEntry* got =
              mds.best_ranked(job.requirements, order, accept, &stats);
          ASSERT_EQ(got == nullptr, expected == nullptr)
              << "trial " << trial << " round " << round << " q " << q;
          if (got != nullptr) {
            EXPECT_EQ(got->info.name, expected->info.name)
                << "trial " << trial << " round " << round << " q " << q
                << " order " << static_cast<int>(order);
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Deadline heap vs full-sweep transitioner oracle
// ---------------------------------------------------------------------

/// Serialize everything observable about a server's history: per-result
/// states, assignments, outputs and timing, plus the aggregate counters.
std::string server_fingerprint(const boinc::BoincServer& server) {
  std::ostringstream out;
  for (const auto& [id, wu] : server.workunits()) {
    out << "wu" << id << " s" << static_cast<int>(wu.state);
    for (const boinc::Result& result : wu.results) {
      out << " [" << result.id << " st" << static_cast<int>(result.state)
          << " h" << result.host_id << " sent" << result.sent_time << " dl"
          << result.deadline << " rcv" << result.received_time << " cpu"
          << result.cpu_seconds << " out" << result.output_hash << "]";
    }
    out << "\n";
  }
  out << "timeouts=" << server.timed_out_results()
      << " reissued=" << server.reissued_results()
      << " cpu=" << server.total_cpu_seconds()
      << " discarded=" << server.discarded_cpu_seconds()
      << " wasted=" << server.wasted_duplicate_cpu_seconds()
      << " corrupted=" << server.corrupted_validations()
      << " online=" << server.online_hosts()
      << " credit=" << server.total_credit() << "\n";
  return out.str();
}

/// A churny scenario tuned to exercise the timeout path hard: short
/// deadlines, intermittent flaky hosts, replication with quorum.
std::string run_transitioner_scenario(bool full_sweep,
                                      std::size_t* events_fired) {
  sim::Simulation sim;
  boinc::BoincPoolConfig config;
  config.hosts = 60;
  config.mean_on_hours = 1.5;
  config.mean_off_hours = 3.0;
  config.mean_lifetime_days = 20.0;
  config.host_error_probability = 0.02;
  config.flaky_host_fraction = 0.15;
  config.flaky_error_probability = 0.4;
  config.default_delay_bound = 6.0 * 3600.0;  // tight: forces timeouts
  config.target_nresults = 2;
  config.min_quorum = 2;
  config.max_total_results = 6;
  config.transitioner_period = 900.0;
  config.seed = 20260806;
  boinc::BoincServer server(sim, "pool", config);
  server.set_transitioner_full_sweep(full_sweep);

  std::vector<grid::GridJob> jobs;
  jobs.reserve(40);
  for (std::uint64_t j = 0; j < 40; ++j) {
    grid::GridJob job;
    job.id = j + 1;
    job.true_reference_runtime = 1800.0 + 450.0 * static_cast<double>(j % 7);
    job.input_mb = 1.0;
    job.output_mb = 0.5;
    jobs.push_back(job);
  }
  // Stagger submissions so dispatches interleave with churn and timeouts.
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    sim.at(static_cast<double>(j) * 1800.0,
           [&server, &jobs, j] { server.submit(jobs[j]); });
  }
  const std::size_t fired = sim.run(30.0 * 86400.0);
  if (events_fired != nullptr) *events_fired = fired;

  std::string fingerprint = server_fingerprint(server);
  std::ostringstream tail;
  tail << "now=" << sim.now() << " pending=" << sim.pending() << "\n";
  return fingerprint + tail.str();
}

TEST(Transitioner, DeadlineHeapMatchesFullSweepOracleBitIdentically) {
  std::size_t heap_events = 0;
  std::size_t sweep_events = 0;
  const std::string heap_run = run_transitioner_scenario(false, &heap_events);
  const std::string sweep_run =
      run_transitioner_scenario(true, &sweep_events);
  EXPECT_EQ(heap_events, sweep_events);
  EXPECT_EQ(heap_run, sweep_run);
  // The scenario must actually exercise the timeout machinery, or the
  // equality above proves nothing.
  EXPECT_NE(heap_run.find("timeouts="), std::string::npos);
  EXPECT_EQ(heap_run.find("timeouts=0 "), std::string::npos)
      << "scenario produced no timeouts; tighten the deadlines";
}

// ---------------------------------------------------------------------
// Sharded pool calendar: twin-run bit-identity
// ---------------------------------------------------------------------

/// A churny pool (frequent flips, departures, timeouts, reissues) run with
/// the given calendar shard count; everything else identical.
std::string run_sharded_scenario(std::size_t shards,
                                 std::size_t* events_fired) {
  sim::Simulation sim;
  boinc::BoincPoolConfig config;
  config.hosts = 400;
  config.mean_on_hours = 2.0;
  config.mean_off_hours = 4.0;
  config.mean_lifetime_days = 15.0;
  config.host_error_probability = 0.02;
  config.flaky_host_fraction = 0.1;
  config.flaky_error_probability = 0.3;
  config.default_delay_bound = 8.0 * 3600.0;
  config.target_nresults = 2;
  config.min_quorum = 2;
  config.max_total_results = 6;
  config.transitioner_period = 900.0;
  config.seed = 20260808;
  config.shards = shards;
  boinc::BoincServer server(sim, "pool", config);

  std::vector<grid::GridJob> jobs;
  jobs.reserve(60);
  for (std::uint64_t j = 0; j < 60; ++j) {
    grid::GridJob job;
    job.id = j + 1;
    job.true_reference_runtime = 1200.0 + 600.0 * static_cast<double>(j % 5);
    job.input_mb = 1.0;
    job.output_mb = 0.5;
    jobs.push_back(job);
  }
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    sim.at(static_cast<double>(j) * 1200.0,
           [&server, &jobs, j] { server.submit(jobs[j]); });
  }
  const std::size_t fired = sim.run(20.0 * 86400.0);
  if (events_fired != nullptr) *events_fired = fired;
  std::ostringstream tail;
  tail << "now=" << sim.now() << " pending=" << sim.pending()
       << " pool_fired=" << server.calendar_steps() << "\n";
  return server_fingerprint(server) + tail.str();
}

TEST(ShardedCalendar, TwinRunsBitIdenticalAcrossShardCounts) {
  std::size_t events1 = 0;
  const std::string run1 = run_sharded_scenario(1, &events1);
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    std::size_t events_n = 0;
    const std::string run_n = run_sharded_scenario(shards, &events_n);
    EXPECT_EQ(events1, events_n) << "shards=" << shards;
    EXPECT_EQ(run1, run_n) << "shards=" << shards;
  }
  // The scenario must actually run flips through the pool calendar, or
  // the equality above proves nothing about the sharded drain/merge.
  EXPECT_NE(run1.find("pool_fired="), std::string::npos);
  EXPECT_EQ(run1.find("pool_fired=0\n"), std::string::npos)
      << "scenario fired no pool-calendar events; loosen the horizon";
}

TEST(Transitioner, DeadlineHeapEntriesAreBoundedByDispatches) {
  sim::Simulation sim;
  boinc::BoincPoolConfig config;
  config.hosts = 10;
  config.mean_on_hours = 10000.0;
  config.mean_off_hours = 0.001;
  config.mean_lifetime_days = 1e6;
  config.host_error_probability = 0.0;
  config.seed = 7;
  boinc::BoincServer server(sim, "pool", config);
  std::vector<grid::GridJob> jobs;
  jobs.reserve(8);
  for (std::uint64_t j = 0; j < 8; ++j) {
    grid::GridJob job;
    job.id = j + 1;
    job.true_reference_runtime = 600.0;
    jobs.push_back(job);
  }
  for (auto& job : jobs) server.submit(job);
  sim.run(86400.0);
  // Every job completed well inside the default 14-day deadline, so the
  // heap still holds their lazily-deleted entries (one per dispatch), and
  // the periodic transitioner never had anything overdue to pop.
  EXPECT_GE(server.deadline_heap_entries(), 8u);
  for (const auto& [id, wu] : server.workunits()) {
    EXPECT_EQ(wu.state, boinc::WorkunitState::kValidated);
  }
}

}  // namespace
}  // namespace lattice
