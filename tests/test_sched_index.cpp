// Decision-identity property tests for the scheduler scalability pass
// (ISSUE 4): the indexed structures must change complexity, never
// decisions.
//
//   FeederQueue — FIFO take/skip/drop semantics matching the seed's
//   mid-deque scan.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "boinc/feeder.hpp"

namespace lattice {
namespace {

// ---------------------------------------------------------------------
// FeederQueue semantics
// ---------------------------------------------------------------------

TEST(FeederQueue, TakesInFifoOrder) {
  boinc::FeederQueue queue;
  queue.enqueue(1);
  queue.enqueue(2);
  queue.enqueue(3);
  std::uint64_t taken = 0;
  EXPECT_TRUE(queue.scan([&](std::uint64_t id) {
    taken = id;
    return boinc::FeederQueue::Probe::kTake;
  }));
  EXPECT_EQ(taken, 1u);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(FeederQueue, SkippedEntriesKeepTheirPositions) {
  boinc::FeederQueue queue;
  for (std::uint64_t id = 1; id <= 5; ++id) queue.enqueue(id);
  // Skip 1 and 2, take 3: the queue must read 1, 2, 4, 5 afterwards.
  EXPECT_TRUE(queue.scan([](std::uint64_t id) {
    return id < 3 ? boinc::FeederQueue::Probe::kSkip
                  : boinc::FeederQueue::Probe::kTake;
  }));
  std::vector<std::uint64_t> remaining;
  while (!queue.empty()) {
    queue.scan([&](std::uint64_t id) {
      remaining.push_back(id);
      return boinc::FeederQueue::Probe::kDrop;
    });
  }
  EXPECT_EQ(remaining, (std::vector<std::uint64_t>{1, 2, 4, 5}));
}

TEST(FeederQueue, DropRemovesAndScanReportsNoTake) {
  boinc::FeederQueue queue;
  queue.enqueue(7);
  queue.enqueue(8);
  EXPECT_FALSE(queue.scan([](std::uint64_t) {
    return boinc::FeederQueue::Probe::kDrop;
  }));
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.scan([](std::uint64_t) {
    return boinc::FeederQueue::Probe::kTake;
  }));
}

TEST(FeederQueue, AllSkippedLeavesQueueIntact) {
  boinc::FeederQueue queue;
  for (std::uint64_t id = 1; id <= 4; ++id) queue.enqueue(id);
  EXPECT_FALSE(queue.scan([](std::uint64_t) {
    return boinc::FeederQueue::Probe::kSkip;
  }));
  EXPECT_EQ(queue.size(), 4u);
  std::uint64_t front = 0;
  queue.scan([&](std::uint64_t id) {
    front = id;
    return boinc::FeederQueue::Probe::kTake;
  });
  EXPECT_EQ(front, 1u);  // original order preserved
}

}  // namespace
}  // namespace lattice
