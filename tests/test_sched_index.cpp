// Decision-identity property tests for the scheduler scalability pass
// (ISSUE 4): the indexed structures must change complexity, never
// decisions.
//
//   1. MDS capability index vs linear directory scan — identical eligible
//      sets in identical order, and MetaScheduler::choose vs choose_linear
//      make identical placements over randomized inventories and job
//      streams in every scheduling mode (including round-robin, whose
//      cursor makes decisions order-sensitive).
//   2. FeederQueue — FIFO take/skip/drop semantics matching the seed's
//      mid-deque scan.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "boinc/feeder.hpp"
#include "core/metascheduler.hpp"
#include "core/speed.hpp"
#include "grid/job.hpp"
#include "grid/mds.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace lattice {
namespace {

// ---------------------------------------------------------------------
// FeederQueue semantics
// ---------------------------------------------------------------------

TEST(FeederQueue, TakesInFifoOrder) {
  boinc::FeederQueue queue;
  queue.enqueue(1);
  queue.enqueue(2);
  queue.enqueue(3);
  std::uint64_t taken = 0;
  EXPECT_TRUE(queue.scan([&](std::uint64_t id) {
    taken = id;
    return boinc::FeederQueue::Probe::kTake;
  }));
  EXPECT_EQ(taken, 1u);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(FeederQueue, SkippedEntriesKeepTheirPositions) {
  boinc::FeederQueue queue;
  for (std::uint64_t id = 1; id <= 5; ++id) queue.enqueue(id);
  // Skip 1 and 2, take 3: the queue must read 1, 2, 4, 5 afterwards.
  EXPECT_TRUE(queue.scan([](std::uint64_t id) {
    return id < 3 ? boinc::FeederQueue::Probe::kSkip
                  : boinc::FeederQueue::Probe::kTake;
  }));
  std::vector<std::uint64_t> remaining;
  while (!queue.empty()) {
    queue.scan([&](std::uint64_t id) {
      remaining.push_back(id);
      return boinc::FeederQueue::Probe::kDrop;
    });
  }
  EXPECT_EQ(remaining, (std::vector<std::uint64_t>{1, 2, 4, 5}));
}

TEST(FeederQueue, DropRemovesAndScanReportsNoTake) {
  boinc::FeederQueue queue;
  queue.enqueue(7);
  queue.enqueue(8);
  EXPECT_FALSE(queue.scan([](std::uint64_t) {
    return boinc::FeederQueue::Probe::kDrop;
  }));
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.scan([](std::uint64_t) {
    return boinc::FeederQueue::Probe::kTake;
  }));
}

TEST(FeederQueue, AllSkippedLeavesQueueIntact) {
  boinc::FeederQueue queue;
  for (std::uint64_t id = 1; id <= 4; ++id) queue.enqueue(id);
  EXPECT_FALSE(queue.scan([](std::uint64_t) {
    return boinc::FeederQueue::Probe::kSkip;
  }));
  EXPECT_EQ(queue.size(), 4u);
  std::uint64_t front = 0;
  queue.scan([&](std::uint64_t id) {
    front = id;
    return boinc::FeederQueue::Probe::kTake;
  });
  EXPECT_EQ(front, 1u);  // original order preserved
}

// ---------------------------------------------------------------------
// Matchmaking index vs linear scan
// ---------------------------------------------------------------------

const std::vector<grid::PlatformSpec> kPlatformPool = {
    {grid::OsType::kLinux, grid::Arch::kX86_64},
    {grid::OsType::kLinux, grid::Arch::kX86},
    {grid::OsType::kWindows, grid::Arch::kX86_64},
    {grid::OsType::kMacOS, grid::Arch::kPowerPC},
};
const std::vector<std::string> kSoftwarePool = {"garli", "java", "blast",
                                                "hmmer"};

grid::ResourceInfo random_resource(util::Rng& rng, std::size_t index) {
  grid::ResourceInfo info;
  info.name = "res" + std::to_string(index);
  info.kind = static_cast<grid::ResourceKind>(rng.below(4));
  info.total_slots = 1 + rng.below(64);
  info.free_slots = rng.below(info.total_slots + 1);
  info.queued_jobs = rng.below(100);
  info.node_memory_gb = 1.0 + static_cast<double>(rng.below(16));
  for (const grid::PlatformSpec& platform : kPlatformPool) {
    if (rng.bernoulli(0.5)) info.platforms.push_back(platform);
  }
  if (info.platforms.empty()) info.platforms.push_back(kPlatformPool[0]);
  for (const std::string& software : kSoftwarePool) {
    if (rng.bernoulli(0.4)) info.software.push_back(software);
  }
  info.mpi_capable = rng.bernoulli(0.3);
  info.stable = rng.bernoulli(0.5);
  return info;
}

grid::GridJob random_job(util::Rng& rng, std::uint64_t id) {
  grid::GridJob job;
  job.id = id;
  for (const grid::PlatformSpec& platform : kPlatformPool) {
    if (rng.bernoulli(0.3)) job.requirements.platforms.push_back(platform);
  }
  for (const std::string& software : kSoftwarePool) {
    if (rng.bernoulli(0.2)) job.requirements.software.push_back(software);
  }
  job.requirements.needs_mpi = rng.bernoulli(0.2);
  job.requirements.min_memory_gb = static_cast<double>(rng.below(10));
  job.true_reference_runtime = rng.uniform(600.0, 40.0 * 3600.0);
  if (rng.bernoulli(0.8)) {
    job.estimated_reference_runtime =
        job.true_reference_runtime * rng.uniform(0.5, 2.0);
  }
  return job;
}

/// Randomized inventory with a staleness mix: all resources report at t=0,
/// half keep reporting, and the clock advances past the TTL so the other
/// half is offline at query time.
void build_directory(sim::Simulation& sim, grid::MdsDirectory& mds,
                     util::Rng& rng, std::size_t resources) {
  std::vector<grid::ResourceInfo> inventory;
  inventory.reserve(resources);
  for (std::size_t i = 0; i < resources; ++i) {
    inventory.push_back(random_resource(rng, i));
  }
  for (const grid::ResourceInfo& info : inventory) mds.report(info);
  // Advance beyond the TTL, re-reporting only the even-indexed half.
  const double later = mds.ttl() + 100.0;
  sim.at(later, [&mds, inventory] {
    for (std::size_t i = 0; i < inventory.size(); i += 2) {
      mds.report(inventory[i]);
    }
  });
  sim.run();
}

TEST(MdsIndex, MatchesLinearScanOverRandomInventories) {
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    util::Rng rng(1000 + trial);
    sim::Simulation sim;
    grid::MdsDirectory mds(sim);
    build_directory(sim, mds, rng, 30 + trial);
    ASSERT_GT(mds.capability_classes(), 1u);

    for (int q = 0; q < 50; ++q) {
      const grid::GridJob job = random_job(rng, static_cast<std::uint64_t>(q));
      std::vector<const grid::MdsEntry*> indexed;
      std::vector<const grid::MdsEntry*> linear;
      grid::MdsMatchStats indexed_stats;
      grid::MdsMatchStats linear_stats;
      mds.match_online(job.requirements, indexed, &indexed_stats);
      mds.match_online_linear(job.requirements, linear, &linear_stats);
      ASSERT_EQ(indexed.size(), linear.size());
      for (std::size_t i = 0; i < indexed.size(); ++i) {
        EXPECT_EQ(indexed[i], linear[i]) << "entry order diverged at " << i;
      }
      EXPECT_EQ(indexed_stats.eligible, linear_stats.eligible);
      // The point of the index: never examine more entries than the scan.
      EXPECT_LE(indexed_stats.candidates_scanned,
                linear_stats.candidates_scanned);
    }
  }
}

TEST(MetaScheduler, IndexedAndLinearChooseIdenticallyInEveryMode) {
  const core::SchedulingMode modes[] = {
      core::SchedulingMode::kRoundRobin, core::SchedulingMode::kLoadOnly,
      core::SchedulingMode::kEstimateAware, core::SchedulingMode::kOracle};
  for (const core::SchedulingMode mode : modes) {
    for (std::uint64_t trial = 0; trial < 5; ++trial) {
      util::Rng rng(7000 + trial);
      sim::Simulation sim;
      grid::MdsDirectory mds(sim);
      build_directory(sim, mds, rng, 25);
      core::SpeedCalibrator speeds(3600.0);
      for (std::size_t i = 0; i < 25; i += 3) {
        const double runtime = rng.uniform(1200.0, 7200.0);
        const std::string name = "res" + std::to_string(i);
        speeds.calibrate(name, {{runtime}});
        mds.set_speed(name, speeds.speed_or_default(name));
      }
      core::SchedulerPolicy policy;
      policy.mode = mode;
      // Separate instances: both paths advance their own round-robin
      // cursor, so interleaving calls on one scheduler would trivially
      // diverge.
      core::MetaScheduler indexed(mds, speeds, policy);
      core::MetaScheduler linear(mds, speeds, policy);
      for (std::uint64_t j = 0; j < 100; ++j) {
        const grid::GridJob job = random_job(rng, j);
        const std::optional<std::string> via_index = indexed.choose(job);
        const std::optional<std::string> via_scan = linear.choose_linear(job);
        ASSERT_EQ(via_index, via_scan)
            << "mode " << scheduling_mode_name(mode) << " trial " << trial
            << " job " << j;
      }
    }
  }
}

}  // namespace
}  // namespace lattice
