// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/simulation.hpp"

namespace lattice::sim {
namespace {

TEST(Simulation, FiresEventsInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.at(5.0, [&] { order.push_back(2); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(9.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(Simulation, EqualTimesFireInScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(3.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulation, AfterSchedulesRelativeToNow) {
  Simulation sim;
  double fired_at = -1.0;
  sim.at(10.0, [&] {
    sim.after(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Simulation, PastEventsClampToNow) {
  Simulation sim;
  double fired_at = -1.0;
  sim.at(10.0, [&] {
    sim.at(2.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}

TEST(Simulation, RunUntilStopsAtHorizon) {
  Simulation sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(2.0, [&] { ++fired; });
  sim.at(3.0, [&] { ++fired; });
  EXPECT_EQ(sim.run(2.0), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_EQ(fired, 3);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulation, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  auto handle = sim.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(handle));
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulation, CancelAfterFireReturnsFalse) {
  Simulation sim;
  auto handle = sim.at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(handle));
}

TEST(Simulation, DoubleCancelReturnsFalse) {
  Simulation sim;
  auto handle = sim.at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(handle));
  EXPECT_FALSE(sim.cancel(handle));
  sim.run();
}

TEST(Simulation, EmptyHandleCancelIsFalse) {
  Simulation sim;
  EventHandle handle;
  EXPECT_FALSE(sim.cancel(handle));
}

TEST(Simulation, StepFiresExactlyOne) {
  Simulation sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulation, EventsScheduledDuringRunAreFired) {
  Simulation sim;
  int chain = 0;
  std::function<void()> next = [&] {
    if (++chain < 100) sim.after(1.0, next);
  };
  sim.at(0.0, next);
  sim.run();
  EXPECT_EQ(chain, 100);
  EXPECT_DOUBLE_EQ(sim.now(), 99.0);
}

TEST(Simulation, PendingCountsLiveEvents) {
  Simulation sim;
  auto a = sim.at(1.0, [] {});
  sim.at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulation, CancelReleasesCapturedStateEagerly) {
  // ISSUE 4 satellite: a cancelled event must not pin its captured state
  // (job payloads, host references) until the tombstone surfaces.
  Simulation sim;
  auto payload = std::make_shared<int>(42);
  auto handle = sim.at(1e6, [payload] { (void)*payload; });
  EXPECT_EQ(payload.use_count(), 2);
  EXPECT_TRUE(sim.cancel(handle));
  EXPECT_EQ(payload.use_count(), 1);  // released at cancel, not at fire
  sim.run();
}

TEST(Simulation, CompactionBoundsTombstonesAndPreservesOrder) {
  Simulation sim;
  std::vector<int> order;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(sim.at(1000.0 - i, [&order, i] { order.push_back(i); }));
  }
  // Cancel 90%: the dead fraction crosses 1/2, so the heap must compact.
  for (int i = 0; i < 1000; ++i) {
    if (i % 10 != 0) sim.cancel(handles[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(sim.pending(), 100u);
  EXPECT_GE(sim.compactions(), 1u);
  EXPECT_LE(sim.dead_entries(), sim.pending());
  sim.run();
  // Survivors fire in time order: times were 1000-i, so descending i.
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t k = 1; k < order.size(); ++k) {
    EXPECT_GT(order[k - 1], order[k]);
  }
}

TEST(Simulation, PeakPendingTracksHighWaterMark) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.at(static_cast<double>(i), [] {});
  EXPECT_EQ(sim.peak_pending(), 5u);
  sim.run();
  EXPECT_EQ(sim.peak_pending(), 5u);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(EventFn, InlinesSmallCapturesAndBoxesLarge) {
  int hits = 0;
  auto small = [&hits] { ++hits; };
  static_assert(EventFn::fits_inline<decltype(small)>());
  EventFn small_fn(small);
  small_fn();
  EXPECT_EQ(hits, 1);

  std::array<double, 16> big_payload{};
  big_payload[7] = 7.5;
  double sum = 0.0;
  auto big = [big_payload, &sum] { sum += big_payload[7]; };
  static_assert(!EventFn::fits_inline<decltype(big)>());
  EventFn big_fn(big);
  EventFn moved(std::move(big_fn));  // boxed closures move by pointer
  moved();
  EXPECT_DOUBLE_EQ(sum, 7.5);
}

TEST(EventFn, MoveTransfersOwnershipAndResetReleases) {
  auto payload = std::make_shared<int>(1);
  EventFn fn([payload] { (void)payload; });
  EXPECT_EQ(payload.use_count(), 2);
  EventFn other(std::move(fn));
  EXPECT_FALSE(fn);  // NOLINT(bugprone-use-after-move) — asserting the moved-from contract
  EXPECT_TRUE(other);
  EXPECT_EQ(payload.use_count(), 2);
  other.reset();
  EXPECT_EQ(payload.use_count(), 1);
}

TEST(PeriodicTask, FiresAtFixedInterval) {
  Simulation sim;
  std::vector<double> times;
  PeriodicTask task(sim, 1.0, 2.0, [&] { times.push_back(sim.now()); });
  sim.run(7.0);
  task.stop();
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0, 5.0, 7.0}));
}

TEST(PeriodicTask, StopHaltsFiring) {
  Simulation sim;
  int count = 0;
  PeriodicTask task(sim, 0.0, 1.0, [&] {
    if (++count == 3) task.stop();
  });
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(task.running());
}

TEST(PeriodicTask, DestructorCancels) {
  Simulation sim;
  int count = 0;
  {
    PeriodicTask task(sim, 0.0, 1.0, [&] { ++count; });
    sim.run(2.0);
  }
  sim.run();
  EXPECT_EQ(count, 3);  // t=0,1,2 then destroyed
}

}  // namespace
}  // namespace lattice::sim
