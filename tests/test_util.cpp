// Unit tests for the utility layer: RNG distributions, formatting, stats,
// tables, thread pool, INI parsing.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "util/fmt.hpp"
#include "util/ini.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace lattice::util {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowIsUnbiasedAcrossSmallRange) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(rng.below(5))];
  }
  for (int count : counts) {
    EXPECT_NEAR(count, n / 5, n / 50);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 200000; ++i) stat.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(stat.mean(), 2.0, 0.05);
  EXPECT_NEAR(stat.stddev(), 3.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  RunningStat stat;
  for (int i = 0; i < 200000; ++i) stat.add(rng.exponential(4.0));
  EXPECT_NEAR(stat.mean(), 4.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng rng(19);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.lognormal(1.0, 0.5));
  EXPECT_NEAR(median(xs), std::exp(1.0), 0.1);
}

TEST(Rng, GammaMomentsMatchShapeScale) {
  Rng rng(23);
  RunningStat stat;
  const double shape = 2.5;
  const double scale = 1.5;
  for (int i = 0; i < 200000; ++i) stat.add(rng.gamma(shape, scale));
  EXPECT_NEAR(stat.mean(), shape * scale, 0.05);
  EXPECT_NEAR(stat.variance(), shape * scale * scale, 0.3);
}

TEST(Rng, GammaShapeBelowOne) {
  Rng rng(29);
  RunningStat stat;
  for (int i = 0; i < 200000; ++i) stat.add(rng.gamma(0.5, 2.0));
  EXPECT_NEAR(stat.mean(), 1.0, 0.05);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(31);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) {
    stat.add(static_cast<double>(rng.poisson(3.0)));
  }
  EXPECT_NEAR(stat.mean(), 3.0, 0.1);
  EXPECT_NEAR(stat.variance(), 3.0, 0.2);
}

TEST(Rng, PoissonLargeMeanUsesApproximation) {
  Rng rng(37);
  RunningStat stat;
  for (int i = 0; i < 100000; ++i) {
    stat.add(static_cast<double>(rng.poisson(100.0)));
  }
  EXPECT_NEAR(stat.mean(), 100.0, 1.0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> xs{1, 2, 3, 4, 5, 6};
  auto copy = xs;
  rng.shuffle(copy);
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, xs);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(43);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, StateRoundTrip) {
  Rng a(99);
  (void)a();
  Rng b(1);
  b.set_state(a.state());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a(), b());
}

TEST(Fmt, BasicSubstitution) {
  EXPECT_EQ(format("x={} y={}", 1, 2.5), "x=1 y=2.5");
  EXPECT_EQ(format("{}", std::string("abc")), "abc");
  EXPECT_EQ(format("{}", true), "true");
}

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(format("{:.2f}", 3.14159), "3.14");
  EXPECT_EQ(format("{:.0f}", 2.7), "3");
}

TEST(Fmt, LiteralBraces) {
  EXPECT_EQ(format("{{}} {}", 5), "{} 5");
}

TEST(Fmt, IntWidth) {
  EXPECT_EQ(format("{:4d}", 42), "  42");
}

TEST(Fmt, MismatchedArgumentsThrow) {
  EXPECT_THROW((void)format("{} {}", 1), std::runtime_error);
  EXPECT_THROW((void)format("{}", 1, 2), std::runtime_error);
}

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Stats, EmptyInputsAreZero) {
  const std::vector<double> xs;
  EXPECT_EQ(mean(xs), 0.0);
  EXPECT_EQ(variance(xs), 0.0);
  EXPECT_EQ(median(xs), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg(ys.rbegin(), ys.rend());
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, RSquaredPerfectAndMeanPredictor) {
  const std::vector<double> obs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r_squared(obs, obs), 1.0);
  const std::vector<double> mean_pred(4, 2.5);
  EXPECT_NEAR(r_squared(obs, mean_pred), 0.0, 1e-12);
}

TEST(Stats, ErrorMetrics) {
  const std::vector<double> obs{1, 2, 4};
  const std::vector<double> pred{2, 2, 2};
  EXPECT_NEAR(mean_squared_error(obs, pred), (1.0 + 0.0 + 4.0) / 3.0, 1e-12);
  EXPECT_NEAR(mean_absolute_error(obs, pred), 1.0, 1e-12);
  EXPECT_NEAR(mean_absolute_percentage_error(obs, pred),
              (1.0 + 0.0 + 0.5) / 3.0, 1e-12);
}

TEST(Stats, RunningStatMatchesBatch) {
  Rng rng(5);
  std::vector<double> xs;
  RunningStat stat;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    xs.push_back(x);
    stat.add(x);
  }
  EXPECT_NEAR(stat.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(stat.variance(), variance(xs), 1e-9);
  EXPECT_DOUBLE_EQ(stat.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(stat.max(), max_of(xs));
}

TEST(Stats, HistogramBinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps to bin 0
  h.add(0.5);
  h.add(9.9);
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
}

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), 10.25});
  const std::string rendered = t.to_string();
  EXPECT_NE(rendered.find("alpha"), std::string::npos);
  EXPECT_NE(rendered.find("1.500"), std::string::npos);
  EXPECT_NE(rendered.find("10.250"), std::string::npos);
}

TEST(Table, CsvEscaping) {
  Table t({"a,b", "c"});
  t.add_row({std::string("x\"y"), static_cast<long long>(3)});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"x\"\"y\""), std::string::npos);
}

TEST(Table, PrecisionSetting) {
  Table t({"v"});
  t.set_precision(1);
  t.add_row({2.345});
  EXPECT_NE(t.to_string().find("2.3"), std::string::npos);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  // The shutdown contract (threadpool.hpp): every future handed out before
  // shutdown resolves, because workers drain the queue before exiting.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&ran] { ran++; }));
  }
  pool.shutdown();
  for (auto& f : futures) f.get();  // all ready, none abandoned
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, EnqueueAfterStopThrows) {
  ThreadPool pool(2);
  pool.shutdown();
  EXPECT_THROW((void)pool.submit([] { return 1; }), std::runtime_error);
  // Idempotent second shutdown (the destructor will be the third).
  pool.shutdown();
}

TEST(Ini, ParseSectionsAndValues) {
  const auto ini = IniFile::parse(
      "# comment\n[general]\nkey = value\nnum = 42\n\n[model]\nrate = 2.5\n"
      "flag = true\n");
  EXPECT_TRUE(ini.has_section("general"));
  EXPECT_EQ(ini.get_or("general", "key", ""), "value");
  EXPECT_EQ(ini.get_int("general", "num", 0), 42);
  EXPECT_DOUBLE_EQ(ini.get_double("model", "rate", 0.0), 2.5);
  EXPECT_TRUE(ini.get_bool("model", "flag", false));
}

TEST(Ini, MissingKeysUseFallbacks) {
  const auto ini = IniFile::parse("[s]\na = 1\n");
  EXPECT_EQ(ini.get_int("s", "missing", 7), 7);
  EXPECT_EQ(ini.get_or("other", "a", "d"), "d");
  EXPECT_FALSE(ini.get("s", "b").has_value());
}

TEST(Ini, MalformedInputThrows) {
  EXPECT_THROW(IniFile::parse("key = value\n"), std::runtime_error);
  EXPECT_THROW(IniFile::parse("[sec\nk = v\n"), std::runtime_error);
  EXPECT_THROW(IniFile::parse("[s]\nnot a pair\n"), std::runtime_error);
  EXPECT_THROW(IniFile::parse("[s]\n= v\n"), std::runtime_error);
}

TEST(Ini, TypedGetterErrors) {
  const auto ini = IniFile::parse("[s]\nn = abc\nb = maybe\n");
  EXPECT_THROW((void)ini.get_int("s", "n", 0), std::runtime_error);
  EXPECT_THROW((void)ini.get_double("s", "n", 0.0), std::runtime_error);
  EXPECT_THROW((void)ini.get_bool("s", "b", false), std::runtime_error);
}

TEST(Ini, RoundTrip) {
  IniFile ini;
  ini.set("a", "k1", "v1");
  ini.set("a", "k2", "v2");
  ini.set("b", "k", "3");
  const auto reparsed = IniFile::parse(ini.to_string());
  EXPECT_EQ(reparsed.get_or("a", "k1", ""), "v1");
  EXPECT_EQ(reparsed.get_or("a", "k2", ""), "v2");
  EXPECT_EQ(reparsed.get_int("b", "k", 0), 3);
}

TEST(Ini, SetOverwrites) {
  IniFile ini;
  ini.set("s", "k", "1");
  ini.set("s", "k", "2");
  EXPECT_EQ(ini.get_or("s", "k", ""), "2");
}

TEST(Log, RespectsLevelAndStream) {
  std::ostringstream captured;
  set_log_stream(&captured);
  set_log_level(LogLevel::kWarn);
  log_info("test", "hidden {}", 1);
  log_warn("test", "visible {}", 2);
  set_log_stream(nullptr);
  set_log_level(LogLevel::kOff);
  EXPECT_EQ(captured.str().find("hidden"), std::string::npos);
  EXPECT_NE(captured.str().find("visible 2"), std::string::npos);
}

}  // namespace
}  // namespace lattice::util
