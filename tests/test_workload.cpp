// Tests for workload generation and trace record/replay.
#include <gtest/gtest.h>

#include <cmath>

#include "core/workload.hpp"
#include "util/stats.hpp"

namespace lattice::core {
namespace {

TEST(Workload, GeneratesRequestedCountWithIncreasingArrivals) {
  GarliCostModel model;
  util::Rng rng(1);
  const auto workload =
      generate_diurnal_workload(200, DiurnalConfig{}, model, rng);
  ASSERT_EQ(workload.size(), 200u);
  for (std::size_t i = 1; i < workload.size(); ++i) {
    EXPECT_GT(workload[i].arrival_seconds,
              workload[i - 1].arrival_seconds);
  }
  for (const auto& entry : workload) {
    EXPECT_GT(entry.true_reference_runtime, 0.0);
  }
}

TEST(Workload, MeanRateMatchesConfig) {
  GarliCostModel model;
  util::Rng rng(2);
  DiurnalConfig config;
  config.mean_jobs_per_day = 120.0;
  const auto workload =
      generate_diurnal_workload(1200, config, model, rng);
  const double days = workload.back().arrival_seconds / 86400.0;
  EXPECT_NEAR(1200.0 / days, 120.0, 15.0);
}

TEST(Workload, DiurnalPeakConcentratesArrivals) {
  GarliCostModel model;
  util::Rng rng(3);
  DiurnalConfig config;
  config.amplitude = 0.9;
  config.peak_hour = 12.0;
  const auto workload =
      generate_diurnal_workload(3000, config, model, rng);
  std::size_t near_peak = 0;   // 06:00-18:00
  std::size_t off_peak = 0;    // the rest
  for (const auto& entry : workload) {
    const double hour = std::fmod(entry.arrival_seconds / 3600.0, 24.0);
    if (hour >= 6.0 && hour < 18.0) {
      ++near_peak;
    } else {
      ++off_peak;
    }
  }
  // With amplitude 0.9 the daytime half carries most of the traffic.
  EXPECT_GT(static_cast<double>(near_peak),
            1.8 * static_cast<double>(off_peak));
}

TEST(Workload, AmplitudeValidation) {
  GarliCostModel model;
  util::Rng rng(4);
  DiurnalConfig config;
  config.amplitude = 1.5;
  EXPECT_THROW(generate_diurnal_workload(10, config, model, rng),
               std::invalid_argument);
}

TEST(Workload, RuntimeCapRespected) {
  GarliCostModel model;
  util::Rng rng(5);
  DiurnalConfig config;
  config.max_expected_hours = 10.0;
  const auto workload =
      generate_diurnal_workload(300, config, model, rng);
  for (const auto& entry : workload) {
    EXPECT_LE(model.expected_runtime(entry.features), 10.0 * 3600.0);
  }
}

TEST(Workload, CsvRoundTripIsExact) {
  GarliCostModel model;
  util::Rng rng(6);
  const auto workload =
      generate_diurnal_workload(50, DiurnalConfig{}, model, rng);
  const auto replayed = workload_from_csv(workload_to_csv(workload));
  ASSERT_EQ(replayed.size(), workload.size());
  for (std::size_t i = 0; i < workload.size(); ++i) {
    EXPECT_DOUBLE_EQ(replayed[i].arrival_seconds,
                     workload[i].arrival_seconds);
    EXPECT_DOUBLE_EQ(replayed[i].true_reference_runtime,
                     workload[i].true_reference_runtime);
    EXPECT_DOUBLE_EQ(replayed[i].features.num_taxa,
                     workload[i].features.num_taxa);
    EXPECT_EQ(replayed[i].features.data_type,
              workload[i].features.data_type);
    EXPECT_EQ(replayed[i].features.has_starting_tree,
              workload[i].features.has_starting_tree);
  }
}

TEST(Workload, CsvErrors) {
  EXPECT_THROW(workload_from_csv(""), std::runtime_error);
  EXPECT_THROW(workload_from_csv("wrong,header\n1,2\n"),
               std::runtime_error);
  EXPECT_THROW(
      workload_from_csv(
          "arrival_seconds,num_taxa,rest\nnot,numeric,data\n"),
      std::runtime_error);
}

TEST(Workload, ReplayIsSchedulerComparable) {
  // The same trace replayed against two systems yields identical total
  // demand (fixed true runtimes), so scheduler comparisons are apples to
  // apples.
  GarliCostModel model;
  util::Rng rng(7);
  const auto workload =
      generate_diurnal_workload(30, DiurnalConfig{}, model, rng);

  auto run_system = [&](core::SchedulingMode mode) {
    LatticeConfig config;
    config.scheduler.mode = mode;
    config.seed = 9;
    LatticeSystem system(config);
    grid::BatchQueueResource::Config cluster;
    cluster.nodes = 16;
    cluster.cores_per_node = 4;
    system.add_cluster("hpc", cluster);
    system.calibrate_speeds();
    submit_workload(system, workload);
    system.run(workload.back().arrival_seconds + 1.0);
    system.run_until_drained(400.0 * 86400.0);
    return system.metrics().useful_cpu_seconds;
  };
  const double a = run_system(SchedulingMode::kLoadOnly);
  const double b = run_system(SchedulingMode::kRoundRobin);
  // One resource, identical runtimes: identical useful CPU totals.
  EXPECT_NEAR(a, b, 1e-6);
}

}  // namespace
}  // namespace lattice::core
