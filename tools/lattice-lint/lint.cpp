#include "lattice-lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace lattice::lint {
namespace {

// ---------------------------------------------------------------------------
// Lexing: classify every byte of the file as code, comment, or string so the
// rules can look at the view they care about. Rules that hunt identifiers
// (clocks, rng, containers) use the `code` view with comments *and* literal
// bodies blanked; the metric-name rule uses `code_str` (literals kept,
// comments blanked); suppression parsing uses the `comment` view.
// ---------------------------------------------------------------------------

struct Views {
  std::string code;      // comments and string/char literals blanked
  std::string code_str;  // comments blanked, string literals kept
  std::string comment;   // only comment text kept
};

Views lex(std::string_view text) {
  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  Views v;
  v.code.assign(text.size(), ' ');
  v.code_str.assign(text.size(), ' ');
  v.comment.assign(text.size(), ' ');
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      v.code[i] = v.code_str[i] = v.comment[i] = '\n';
      if (state == State::kLine) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          --i;  // reprocess as comment
          continue;
        }
        if (c == '/' && next == '*') {
          state = State::kBlock;
          v.comment[i] = c;
          continue;
        }
        if (c == 'R' && next == '"' &&
            (i == 0 || (!std::isalnum(static_cast<unsigned char>(text[i - 1])) &&
                        text[i - 1] != '_'))) {
          // Raw string literal: find the delimiter up to '('.
          std::size_t j = i + 2;
          raw_delim.clear();
          while (j < text.size() && text[j] != '(') raw_delim += text[j++];
          state = State::kRaw;
          v.code_str[i] = c;
          continue;
        }
        if (c == '"') {
          state = State::kString;
          v.code_str[i] = c;
          continue;
        }
        if (c == '\'') {
          // Not a char literal when preceded by an identifier/number char:
          // digit separators (1'000) and user-defined literal suffixes.
          if (i > 0 && (std::isalnum(static_cast<unsigned char>(text[i - 1])) ||
                        text[i - 1] == '_')) {
            v.code[i] = c;
            v.code_str[i] = c;
            continue;
          }
          state = State::kChar;
          continue;
        }
        v.code[i] = c;
        v.code_str[i] = c;
        continue;
      case State::kLine:
        v.comment[i] = c;
        continue;
      case State::kBlock:
        v.comment[i] = c;
        if (c == '*' && next == '/') {
          v.comment[i + 1] = '/';
          ++i;
          state = State::kCode;
        }
        continue;
      case State::kString:
        v.code_str[i] = c;
        if (c == '\\' && next != '\0' && next != '\n') {
          if (i + 1 < text.size()) v.code_str[i + 1] = next;
          ++i;
          continue;
        }
        if (c == '"') state = State::kCode;
        continue;
      case State::kChar:
        if (c == '\\' && next != '\0' && next != '\n') {
          ++i;
          continue;
        }
        if (c == '\'') state = State::kCode;
        continue;
      case State::kRaw: {
        v.code_str[i] = c;
        // Close on )delim"
        if (c == ')' && text.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < text.size() &&
            text[i + 1 + raw_delim.size()] == '"') {
          for (std::size_t k = 0; k <= raw_delim.size() + 1; ++k) {
            if (i + k < text.size() && text[i + k] != '\n') {
              v.code_str[i + k] = text[i + k];
            }
          }
          i += raw_delim.size() + 1;
          state = State::kCode;
        }
        continue;
      }
    }
  }
  return v;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      lines.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

bool blank(const std::string& s) {
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isspace(c) != 0;
  });
}

// ---------------------------------------------------------------------------
// Suppressions:  // lattice-lint: allow(<rule>) — <reason>
// A suppression on a line whose code view is blank applies to the next line
// (the clang-format-friendly form); otherwise it applies to its own line.
// ---------------------------------------------------------------------------

struct ParsedSuppression {
  int target_line;  // 1-based line the suppression covers
  int comment_line;
  std::string rule;
  std::string reason;  // empty when malformed
  bool well_formed;
};

const std::regex& allow_re() {
  // Reason separator: em dash, en dash, or one/two ASCII hyphens.
  static const std::regex re(
      R"(lattice-lint:\s*allow\(\s*([A-Za-z0-9_-]+)\s*\)\s*(?:\xE2\x80\x94|\xE2\x80\x93|--|-)?\s*(.*))");
  return re;
}

std::vector<ParsedSuppression> parse_suppressions(
    const std::vector<std::string>& comment_lines,
    const std::vector<std::string>& code_lines) {
  std::vector<ParsedSuppression> out;
  for (std::size_t i = 0; i < comment_lines.size(); ++i) {
    const std::string& comment = comment_lines[i];
    if (comment.find("lattice-lint:") == std::string::npos) continue;
    std::smatch m;
    std::string rest = comment;
    if (!std::regex_search(rest, m, allow_re())) continue;
    ParsedSuppression s;
    s.comment_line = static_cast<int>(i) + 1;
    s.rule = m[1];
    std::string reason = m[2];
    // Trim.
    while (!reason.empty() && std::isspace(static_cast<unsigned char>(
                                  reason.back()))) {
      reason.pop_back();
    }
    // Require a real separator before the reason: the captured group only
    // matches after the optional dash, so a bare "allow(x) words" without a
    // dash is also accepted iff non-empty — but an empty tail is malformed.
    s.reason = reason;
    s.well_formed = !reason.empty();
    const bool standalone = blank(code_lines[i]);
    s.target_line = standalone ? static_cast<int>(i) + 2
                               : static_cast<int>(i) + 1;
    out.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Unordered-container declaration scan (whole-file, code view).
// ---------------------------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Returns declared variable names plus alias type names for
// unordered_map/unordered_set in `code`.
void scan_unordered_decls(const std::string& code,
                          std::set<std::string>* vars,
                          std::set<std::string>* aliases) {
  static const std::regex decl_re(R"(unordered_(?:map|set)\s*<)");
  for (auto it = std::sregex_iterator(code.begin(), code.end(), decl_re);
       it != std::sregex_iterator(); ++it) {
    const std::size_t token_start = static_cast<std::size_t>(it->position());
    // Skip if part of a longer identifier (e.g. my_unordered_map_thing).
    if (token_start > 0 && ident_char(code[token_start - 1]) &&
        code[token_start - 1] != ':') {
      continue;
    }
    std::size_t p = token_start + static_cast<std::size_t>(it->length());
    int depth = 1;
    while (p < code.size() && depth > 0) {
      if (code[p] == '<') ++depth;
      if (code[p] == '>') --depth;
      ++p;
    }
    if (depth != 0) continue;
    // Alias?  using NAME = std::unordered_map<...>
    {
      std::size_t b = token_start;
      // Walk back over "std::", whitespace, "const".
      auto skip_back_ws = [&](std::size_t pos) {
        while (pos > 0 &&
               std::isspace(static_cast<unsigned char>(code[pos - 1]))) {
          --pos;
        }
        return pos;
      };
      if (b >= 5 && code.compare(b - 5, 5, "std::") == 0) b -= 5;
      b = skip_back_ws(b);
      if (b >= 1 && code[b - 1] == '=') {
        std::size_t e = skip_back_ws(b - 1);
        std::size_t s = e;
        while (s > 0 && ident_char(code[s - 1])) --s;
        const std::string name = code.substr(s, e - s);
        std::size_t u = skip_back_ws(s);
        if (u >= 5 && code.compare(u - 5, 5, "using") == 0 && !name.empty()) {
          aliases->insert(name);
          continue;
        }
      }
    }
    // Declaration?  ...> [&*]* name [;,=({)]
    while (p < code.size() &&
           (std::isspace(static_cast<unsigned char>(code[p])) ||
            code[p] == '&' || code[p] == '*')) {
      ++p;
    }
    std::size_t s = p;
    while (p < code.size() && ident_char(code[p])) ++p;
    if (p == s) continue;
    const std::string name = code.substr(s, p - s);
    while (p < code.size() &&
           std::isspace(static_cast<unsigned char>(code[p]))) {
      ++p;
    }
    if (p < code.size() &&
        (code[p] == ';' || code[p] == ',' || code[p] == '=' ||
         code[p] == '{' || code[p] == '(' || code[p] == ')')) {
      vars->insert(name);
    }
  }
}

// Resolve alias declarations:  AliasName var;
// Returns the (line, var) pairs so alias-typed declarations can be both
// audited (unordered-alias) and tracked for the iteration rule.
struct AliasDecl {
  int line;
  std::string var;
  std::string alias;
};

std::vector<AliasDecl> collect_alias_decls(
    const std::string& code, const std::vector<std::size_t>& line_starts,
    const std::set<std::string>& aliases) {
  std::vector<AliasDecl> out;
  for (const std::string& alias : aliases) {
    const std::regex re("\\b" + alias + R"(\s+([A-Za-z_]\w*)\s*[;={(])");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), re);
         it != std::sregex_iterator(); ++it) {
      out.push_back(AliasDecl{
          0, (*it)[1], alias});
      out.back().line = static_cast<int>(
          std::upper_bound(line_starts.begin(), line_starts.end(),
                           static_cast<std::size_t>(it->position())) -
          line_starts.begin());
    }
  }
  return out;
}

// using LOCAL = KnownAlias;  — a local re-alias of a (possibly injected)
// unordered alias. Returns (line, new-alias-name) pairs.
std::vector<AliasDecl> collect_realiases(
    const std::string& code, const std::vector<std::size_t>& line_starts,
    const std::set<std::string>& aliases) {
  std::vector<AliasDecl> out;
  for (const std::string& alias : aliases) {
    const std::regex re(
        R"(using\s+([A-Za-z_]\w*)\s*=\s*(?:\w+\s*::\s*)*)" + alias +
        R"(\s*[;<])");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), re);
         it != std::sregex_iterator(); ++it) {
      out.push_back(AliasDecl{0, (*it)[1], alias});
      out.back().line = static_cast<int>(
          std::upper_bound(line_starts.begin(), line_starts.end(),
                           static_cast<std::size_t>(it->position())) -
          line_starts.begin());
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Metric-name scan (code_str view).
// ---------------------------------------------------------------------------

bool metric_name_ok(const std::string& name) {
  static const std::regex re(R"(^[a-z][a-z0-9]*(\.[a-z][a-z0-9_]*)+$)");
  return std::regex_match(name, re);
}

struct MetricCall {
  std::size_t pos;      // byte offset of the call head
  std::string method;
  std::string literal;  // the name/category literal ("" when absent)
  bool has_literal;
};

std::vector<MetricCall> scan_metric_calls(const std::string& code_str) {
  static const std::regex head_re(
      R"((\.|->)\s*(wall_track|async_begin|async_end|complete_wall|histogram|counter|gauge|track|instant|complete)\s*\()");
  static const std::map<std::string, int> literal_index = {
      {"counter", 1},   {"gauge", 1},      {"histogram", 1},
      {"track", 1},     {"wall_track", 1}, {"async_begin", 2},
      {"async_end", 2}, {"instant", 2},    {"complete", 2},
      {"complete_wall", 2}};
  std::vector<MetricCall> calls;
  for (auto it =
           std::sregex_iterator(code_str.begin(), code_str.end(), head_re);
       it != std::sregex_iterator(); ++it) {
    MetricCall call;
    call.pos = static_cast<std::size_t>(it->position());
    call.method = (*it)[2];
    // Walk the argument list collecting string literals until the matching
    // close paren. Adjacent literals concatenate.
    std::size_t p = call.pos + static_cast<std::size_t>(it->length());
    int depth = 1;
    int literal_no = 0;
    const int want = literal_index.at(call.method);
    call.has_literal = false;
    std::string current;
    bool in_string = false;
    bool just_closed = false;
    while (p < code_str.size() && depth > 0) {
      const char c = code_str[p];
      if (in_string) {
        if (c == '\\') {
          current += c;
          if (p + 1 < code_str.size()) current += code_str[++p];
        } else if (c == '"') {
          in_string = false;
          just_closed = true;
        } else {
          current += c;
        }
      } else if (c == '"') {
        if (!just_closed) {
          ++literal_no;
          current.clear();
        }
        in_string = true;
      } else {
        if (just_closed &&
            std::isspace(static_cast<unsigned char>(c)) == 0) {
          // Literal finished (next token is not a continuation literal).
          if (literal_no == want) {
            call.literal = current;
            call.has_literal = true;
            break;
          }
          just_closed = false;
        }
        if (c == '(') ++depth;
        if (c == ')') --depth;
      }
      ++p;
    }
    if (!call.has_literal && just_closed && literal_no == want) {
      call.literal = current;
      call.has_literal = true;
    }
    calls.push_back(std::move(call));
  }
  return calls;
}

int line_of(const std::vector<std::size_t>& line_starts, std::size_t pos) {
  const auto it =
      std::upper_bound(line_starts.begin(), line_starts.end(), pos);
  return static_cast<int>(it - line_starts.begin());
}

// ---------------------------------------------------------------------------
// kernel-callback-throw: a `throw` inside the argument list of a sim-kernel
// scheduling call (at/after/PeriodicTask). A throw expression can only
// reach that span through a lambda body, and an exception escaping an
// event-loop handler kills the run mid-epoch, so every hit is a finding.
// ---------------------------------------------------------------------------

struct KernelThrow {
  std::size_t pos;      // byte offset of the throw keyword
  std::string method;   // at / after / PeriodicTask
};

std::vector<KernelThrow> scan_kernel_throws(const std::string& code) {
  static const std::regex head_re(
      R"((?:(\.|->)\s*(at|after)|(PeriodicTask)\b[^;{}()\n]*)\s*\()");
  static const std::regex throw_re(R"(\bthrow\b)");
  std::vector<KernelThrow> hits;
  for (auto it = std::sregex_iterator(code.begin(), code.end(), head_re);
       it != std::sregex_iterator(); ++it) {
    const std::string method =
        (*it)[2].matched ? (*it)[2].str() : std::string("PeriodicTask");
    // Walk to the matching close paren of the scheduling call.
    std::size_t p = static_cast<std::size_t>(it->position() + it->length());
    const std::size_t arg_start = p;
    int depth = 1;
    while (p < code.size() && depth > 0) {
      if (code[p] == '(') ++depth;
      if (code[p] == ')') --depth;
      ++p;
    }
    if (depth != 0) continue;
    const std::string args = code.substr(arg_start, p - arg_start);
    for (auto th = std::sregex_iterator(args.begin(), args.end(), throw_re);
         th != std::sregex_iterator(); ++th) {
      hits.push_back(
          KernelThrow{arg_start + static_cast<std::size_t>(th->position()),
                      method});
    }
  }
  return hits;
}

}  // namespace

const std::vector<std::string>& rule_ids() {
  static const std::vector<std::string> ids = {
      "wall-clock",          "ambient-rng",
      "unordered-member",    "unordered-alias",
      "unordered-iteration", "kernel-callback-throw",
      "metric-name",         "header-self-contained",
      "intrinsics-confined",
      "decision-sort",       "layering-violation",
      "layering-cycle",      "suppression-syntax",
      "suppression-unknown-rule", "suppression-undocumented",
      "suppression-dead"};
  return ids;
}

std::vector<Suppression> collect_suppressions(std::string_view path,
                                              std::string_view text) {
  const Views views = lex(text);
  const auto comment_lines = split_lines(views.comment);
  const auto code_lines = split_lines(views.code);
  std::vector<Suppression> out;
  for (const ParsedSuppression& s :
       parse_suppressions(comment_lines, code_lines)) {
    if (!s.well_formed) continue;
    out.push_back(Suppression{std::string(path), s.target_line, s.rule,
                              s.reason});
  }
  return out;
}

std::vector<Finding> lint_source(std::string_view path, std::string_view text,
                                 const Options& options) {
  const Views views = lex(text);
  const auto code_lines = split_lines(views.code);
  const auto comment_lines = split_lines(views.comment);
  std::vector<Finding> findings;
  const std::string file(path);

  // --- Suppressions (and their own lint) ---------------------------------
  const auto suppressions = parse_suppressions(comment_lines, code_lines);
  auto suppressed = [&](int line, std::string_view rule) {
    for (const ParsedSuppression& s : suppressions) {
      if (s.well_formed && s.target_line == line && s.rule == rule) {
        return true;
      }
    }
    return false;
  };
  // Record a finding: suppressed ones are dropped in the default mode but
  // retained (flagged) for the raw view (--json, suppression-dead).
  auto add = [&](int line, const char* rule, std::string message) {
    const bool covered = suppressed(line, rule);
    if (covered && options.apply_suppressions) return;
    findings.push_back(
        Finding{file, line, rule, std::move(message), covered});
  };
  for (const ParsedSuppression& s : suppressions) {
    if (!s.well_formed) {
      findings.push_back(Finding{
          file, s.comment_line, "suppression-syntax",
          "allow(" + s.rule +
              ") needs a reason: `// lattice-lint: allow(<rule>) — <why>`",
          false});
    }
    if (std::find(rule_ids().begin(), rule_ids().end(), s.rule) ==
        rule_ids().end()) {
      findings.push_back(Finding{
          file, s.comment_line, "suppression-unknown-rule",
          "unknown rule id '" + s.rule + "' in suppression", false});
    }
  }

  std::vector<std::size_t> line_starts{0};
  for (std::size_t i = 0; i < views.code.size(); ++i) {
    if (views.code[i] == '\n') line_starts.push_back(i + 1);
  }

  // --- Deterministic-path rules ------------------------------------------
  if (options.deterministic) {
    struct Pattern {
      const char* rule;
      std::regex re;
      const char* what;
    };
    static const std::vector<Pattern> patterns = [] {
      std::vector<Pattern> p;
      p.push_back({"wall-clock",
                   std::regex(R"((system_clock|steady_clock|high_resolution_clock)\s*::)"),
                   "wall/steady clock read"});
      p.push_back({"wall-clock",
                   std::regex(R"((^|[^A-Za-z0-9_])time\s*\()"),
                   "time() call"});
      p.push_back({"wall-clock",
                   std::regex(R"((^|[^A-Za-z0-9_])clock\s*\()"),
                   "clock() call"});
      p.push_back({"wall-clock",
                   std::regex(
                       R"(\b(localtime|gmtime|mktime|strftime|gettimeofday|clock_gettime)\s*\()"),
                   "wall-clock library call"});
      p.push_back({"wall-clock", std::regex(R"(\bwall_now_us\s*\()"),
                   "Tracer::wall_now_us() read"});
      p.push_back({"ambient-rng",
                   std::regex(R"((^|[^A-Za-z0-9_:])s?rand\s*\()"),
                   "ambient C rand()/srand()"});
      p.push_back({"ambient-rng", std::regex(R"(\brandom_device\b)"),
                   "std::random_device (nondeterministic seed source)"});
      return p;
    }();
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      const int line = static_cast<int>(i) + 1;
      for (const Pattern& p : patterns) {
        if (std::regex_search(code_lines[i], p.re)) {
          add(line, p.rule,
              std::string(p.what) +
                  " in deterministic code (allowed only in obs/ or with a "
                  "tagged suppression)");
        }
      }
    }

    // unordered-member: every textual mention of an unordered container in
    // a deterministic file is an audit point.
    static const std::regex member_re(R"(\bunordered_(map|set)\s*<)");
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      const std::string& l = code_lines[i];
      const std::size_t first = l.find_first_not_of(" \t");
      if (first != std::string::npos && l[first] == '#') continue;  // include
      const int line = static_cast<int>(i) + 1;
      if (std::regex_search(l, member_re)) {
        add(line, "unordered-member",
            "unordered container in a deterministic path: convert to "
            "ordered/vector storage or justify with a suppression");
      }
    }

    // Local declarations plus the project model's cross-header knowledge.
    std::set<std::string> vars;
    std::set<std::string> aliases;
    scan_unordered_decls(views.code, &vars, &aliases);

    // unordered-alias: declarations whose type is an alias (local alias
    // names are reported by unordered-member at their definition; alias
    // names injected from the model fire here, because the defining header
    // is out of view for the per-file pass).
    std::set<std::string> all_aliases = aliases;
    for (const std::string& a : options.unordered_aliases) {
      all_aliases.insert(a);
    }
    // Re-aliases (`using Local = HostMap;`) extend the alias set and are
    // themselves audit points when they launder an injected alias.
    for (int pass = 0; pass < 2; ++pass) {  // two passes: chain of re-alias
      for (const AliasDecl& d :
           collect_realiases(views.code, line_starts, all_aliases)) {
        if (all_aliases.insert(d.var).second &&
            options.unordered_aliases.count(d.alias) > 0) {
          add(d.line, "unordered-alias",
              "'" + d.var + "' re-aliases '" + d.alias +
                  "', which resolves to an unordered container in another "
                  "header: audit or convert to ordered storage");
        }
      }
    }
    for (const AliasDecl& d :
         collect_alias_decls(views.code, line_starts, all_aliases)) {
      vars.insert(d.var);
      if (aliases.count(d.alias) == 0) {
        // The alias was defined elsewhere (injected or re-aliased): the
        // declaration itself is the audit point the alias laundered away.
        add(d.line, "unordered-alias",
            "'" + d.var + "' is declared via alias '" + d.alias +
                "', which resolves to an unordered container: audit or "
                "convert to ordered storage");
      }
    }

    // unordered-iteration over anything known to be unordered: local
    // declarations, alias-typed declarations, and member names indexed by
    // the project model (a .cpp iterating `matrix_cache_` declared in its
    // header is the cross-TU escape the per-file scan used to miss).
    std::set<std::string> iterables = vars;
    for (const std::string& m : options.unordered_members) {
      iterables.insert(m);
    }
    if (!iterables.empty()) {
      for (std::size_t i = 0; i < code_lines.size(); ++i) {
        const int line = static_cast<int>(i) + 1;
        const std::string& l = code_lines[i];
        std::smatch m;
        static const std::regex range_for_re(
            R"(for\s*\([^;()]*:\s*(?:[A-Za-z_]\w*\s*(?:\.|->)\s*)*([A-Za-z_]\w*)\s*\))");
        if (std::regex_search(l, m, range_for_re) && iterables.count(m[1])) {
          add(line, "unordered-iteration",
              "range-for over unordered container '" + m[1].str() +
                  "': iteration order is hash-order, not deterministic "
                  "across platforms");
        }
        static const std::regex begin_re(
            R"((^|[^A-Za-z0-9_])([A-Za-z_]\w*)\s*\.\s*c?r?begin\s*\()");
        if (std::regex_search(l, m, begin_re) && iterables.count(m[2])) {
          add(line, "unordered-iteration",
              "iterator walk over unordered container '" + m[2].str() +
                  "': iteration order is hash-order, not deterministic "
                  "across platforms");
        }
      }
    }

    // kernel-callback-throw: exceptions may not cross the event loop.
    for (const KernelThrow& hit : scan_kernel_throws(views.code)) {
      add(line_of(line_starts, hit.pos), "kernel-callback-throw",
          "throw inside a callback handed to the sim kernel (" + hit.method +
              "): an exception escaping an event handler kills the run "
              "mid-epoch — validate before scheduling, or fail via the "
              "outcome path");
    }
  }

  // --- Decision-path rules -----------------------------------------------
  if (options.decision_path) {
    // Sorting inside src/grid or src/core is presumed to sit on a
    // per-decision path (matchmaking, ranking) unless audited otherwise:
    // the sub-linear pass maintains rank order incrementally in the MDS
    // index, so a new sort here is the exact O(n log n)-per-decision
    // regression it removed.
    static const std::regex sort_re(
        R"(\bstd\s*::\s*(stable_sort|partial_sort|nth_element|sort)\s*\()");
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      const int line = static_cast<int>(i) + 1;
      std::smatch m;
      if (std::regex_search(code_lines[i], m, sort_re)) {
        add(line, "decision-sort",
            "std::" + m[1].str() +
                " in a scheduler decision-path dir: keep rank order in the "
                "MDS index (or tag the sort as off the decision path with a "
                "suppression)");
      }
    }
  }

  // --- Intrinsics confinement (all files outside src/phylo/kernels/) -----
  // Raw SIMD usage anywhere else would fork the arithmetic per ISA and
  // break the cross-tier bit-determinism contract the kernel module's
  // dispatcher guarantees (DESIGN.md §14): vector code lives behind the
  // KernelOps table or not at all.
  if (!options.intrinsics_allowed) {
    static const std::regex intrin_re(
        R"(\b_mm\d*_\w+\s*\(|\b__m(128|256|512)[id]?\b|\b__AVX\w*__\b|\bimmintrin\.h\b)");
    for (std::size_t i = 0; i < code_lines.size(); ++i) {
      const int line = static_cast<int>(i) + 1;
      if (std::regex_search(code_lines[i], intrin_re)) {
        add(line, "intrinsics-confined",
            "raw SIMD intrinsic / vector type / ISA guard outside "
            "src/phylo/kernels/: route vector code through the KernelOps "
            "dispatch table so every other layer stays ISA-neutral");
      }
    }
  }

  // --- Metric/trace name grammar (all files) -----------------------------
  {
    std::vector<std::size_t> str_line_starts{0};
    for (std::size_t i = 0; i < views.code_str.size(); ++i) {
      if (views.code_str[i] == '\n') str_line_starts.push_back(i + 1);
    }
    for (const MetricCall& call : scan_metric_calls(views.code_str)) {
      const int line = line_of(str_line_starts, call.pos);
      if (!call.has_literal) continue;  // variable name: check_docs covers it
      if (!metric_name_ok(call.literal)) {
        add(line, "metric-name",
            "'" + call.literal + "' (arg of ." + call.method +
                ") does not match the `subsystem.noun_verb` grammar "
                "[a-z0-9]+(.[a-z0-9_]+)+");
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  findings.erase(
      std::unique(findings.begin(), findings.end(),
                  [](const Finding& a, const Finding& b) {
                    return a.line == b.line && a.rule == b.rule &&
                           a.message == b.message;
                  }),
      findings.end());
  return findings;
}

std::string format(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ':' << finding.line << ' ' << finding.rule << ' '
      << finding.message;
  return out.str();
}

std::string to_json(const std::vector<Finding>& findings) {
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  };
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i ? ",\n  " : "\n  ") << "{\"file\": \"" << escape(f.file)
        << "\", \"line\": " << f.line << ", \"rule\": \"" << escape(f.rule)
        << "\", \"message\": \"" << escape(f.message)
        << "\", \"suppressed\": " << (f.suppressed ? "true" : "false")
        << "}";
  }
  out << (findings.empty() ? "]" : "\n]");
  return out.str();
}

namespace detail {

std::string code_view(std::string_view text) { return lex(text).code; }

void collect_unordered_names(const std::string& code,
                             std::set<std::string>* vars,
                             std::set<std::string>* aliases) {
  scan_unordered_decls(code, vars, aliases);
}

}  // namespace detail

}  // namespace lattice::lint
