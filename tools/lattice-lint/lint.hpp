// lattice-lint — project-invariant static checks for the lattice tree.
//
// The simulator and likelihood engine promise bit-deterministic results
// (DESIGN.md §9); these rules make that promise *statically* enforceable so
// a refactor cannot quietly reintroduce wall-clock reads, ambient RNG, or
// hash-order-dependent iteration into a deterministic path. The engine is a
// line-oriented lexer (comments and string literals are recognized, not a
// full parser), which is exactly enough for the invariants below because
// the project style keeps the relevant constructs on one line and metric
// names as literal strings at the call site (see src/obs/metrics.hpp).
//
// Rules (ids are stable; docs/LINTING.md is the catalog):
//   wall-clock           no system/steady/high_resolution clock, time(),
//                        clock(), gettimeofday, or Tracer::wall_now_us in
//                        deterministic code
//   ambient-rng          no rand()/srand()/std::random_device; use the
//                        seeded util::Rng
//   unordered-member     every unordered_map/unordered_set mention in a
//                        deterministic file must carry an audit suppression
//   unordered-iteration  no range-for or begin()/end() iteration over a
//                        variable declared as an unordered container
//   metric-name          metric/trace name literals follow the cataloged
//                        `subsystem.noun_verb` grammar
//   decision-sort        no std::sort/stable_sort/partial_sort/nth_element
//                        in scheduler decision-path dirs (src/grid,
//                        src/core) without an audit suppression — the
//                        sub-linear decision pass replaced per-decision
//                        sorts with maintained rank indexes
//   header-self-contained (driver-level) every .hpp compiles standalone
//   suppression-syntax   allow() comment without a reason string
//   suppression-unknown-rule  allow() naming a rule id that does not exist
//   suppression-undocumented  suppression missing from the docs inventory
//
// Suppression syntax, same line or the immediately preceding comment line:
//   // lattice-lint: allow(<rule-id>) — <reason>
// The reason is mandatory; `--docs` additionally cross-checks every
// suppression against the inventory table in docs/LINTING.md.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lattice::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Suppression {
  std::string file;
  int line = 0;   // line the suppression applies to
  std::string rule;
  std::string reason;
};

struct Options {
  /// Deterministic file: wall-clock, ambient-rng and the unordered rules
  /// are active. Metric-name is checked everywhere.
  bool deterministic = false;
  /// Scheduler decision-path file (src/grid, src/core): the decision-sort
  /// rule is active — sorting inside a per-decision path is the exact
  /// regression the rank-index pass removed, so every remaining sort must
  /// carry an audit suppression placing it off the decision path.
  bool decision_path = false;
};

/// All rule ids the engine knows (suppressions must name one of these).
const std::vector<std::string>& rule_ids();

/// Lint one source file already loaded into `text`. `path` is used only
/// for reporting. Findings come back sorted by (line, rule).
std::vector<Finding> lint_source(std::string_view path, std::string_view text,
                                 const Options& options);

/// Collect the (well-formed) suppressions present in `text`, for the
/// docs-inventory cross-check and `--list-suppressions`.
std::vector<Suppression> collect_suppressions(std::string_view path,
                                              std::string_view text);

/// Stable report line: `<file>:<line> <rule-id> <message>`.
std::string format(const Finding& finding);

}  // namespace lattice::lint
