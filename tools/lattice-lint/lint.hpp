// lattice-lint — project-invariant static checks for the lattice tree.
//
// The simulator and likelihood engine promise bit-deterministic results
// (DESIGN.md §9); these rules make that promise *statically* enforceable so
// a refactor cannot quietly reintroduce wall-clock reads, ambient RNG, or
// hash-order-dependent iteration into a deterministic path. The engine is
// two-pass: pass 1 (model.hpp) builds a project model — the full #include
// graph over src/, bench/, examples/, and tools/, plus a symbol index of
// using-aliases/typedefs/struct members that resolve (transitively, across
// headers) to unordered containers; pass 2 runs the per-file rules below
// with the model's cross-TU knowledge injected through Options. Each file
// is still lexed (comments and string literals are recognized, not parsed),
// which is exactly enough for the invariants below because the project
// style keeps the relevant constructs on one line and metric names as
// literal strings at the call site (see src/obs/metrics.hpp).
//
// Rules (ids are stable; docs/LINTING.md is the catalog):
//   wall-clock           no system/steady/high_resolution clock, time(),
//                        clock(), gettimeofday, or Tracer::wall_now_us in
//                        deterministic code
//   ambient-rng          no rand()/srand()/std::random_device; use the
//                        seeded util::Rng
//   unordered-member     every unordered_map/unordered_set mention in a
//                        deterministic file must carry an audit suppression
//   unordered-alias      a declaration whose type is a using-alias/typedef
//                        that resolves (transitively, across headers) to an
//                        unordered container is the same audit point — the
//                        alias loophole the per-file rule could not see
//   unordered-iteration  no range-for or begin()/end() iteration over a
//                        variable or struct member known (locally or via
//                        the project model) to be an unordered container
//   kernel-callback-throw no `throw` inside a lambda handed to the sim
//                        kernel (at/after/PeriodicTask): an exception
//                        escaping the event loop kills the run mid-epoch
//   metric-name          metric/trace name literals follow the cataloged
//                        `subsystem.noun_verb` grammar
//   decision-sort        no std::sort/stable_sort/partial_sort/nth_element
//                        in scheduler decision-path dirs (src/grid,
//                        src/core) without an audit suppression — the
//                        sub-linear decision pass replaced per-decision
//                        sorts with maintained rank indexes
//   layering-violation   (model-level) an include edge that contradicts
//                        the declared module DAG in layering.ini; hard
//                        finding, not suppressible
//   layering-cycle       (model-level) a cycle in the include graph, at
//                        file or module granularity; hard finding
//   header-self-contained (driver-level) every .hpp compiles standalone
//   suppression-syntax   allow() comment without a reason string
//   suppression-unknown-rule  allow() naming a rule id that does not exist
//   suppression-undocumented  suppression missing from the docs inventory
//   suppression-dead     a suppression whose rule no longer fires at that
//                        site, or a docs-inventory row with no matching
//                        suppression left in the tree
//
// Suppression syntax, same line or the immediately preceding comment line:
//   // lattice-lint: allow(<rule-id>) — <reason>
// The reason is mandatory; `--docs` additionally cross-checks every
// suppression against the inventory table in docs/LINTING.md, in both
// directions (undocumented suppression / stale inventory row).
#pragma once

#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace lattice::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  /// True when a well-formed suppression covers this finding. Suppressed
  /// findings are dropped from the text report and the exit status but are
  /// kept (flagged) in the --json stream so editors and CI see the full
  /// audit surface.
  bool suppressed = false;
};

struct Suppression {
  std::string file;
  int line = 0;   // line the suppression applies to
  std::string rule;
  std::string reason;
};

struct Options {
  /// Deterministic file: wall-clock, ambient-rng, the unordered rules and
  /// kernel-callback-throw are active. Metric-name is checked everywhere.
  bool deterministic = false;
  /// Scheduler decision-path file (src/grid, src/core): the decision-sort
  /// rule is active — sorting inside a per-decision path is the exact
  /// regression the rank-index pass removed, so every remaining sort must
  /// carry an audit suppression placing it off the decision path.
  bool decision_path = false;
  /// When false, findings covered by a well-formed suppression are still
  /// returned, marked `suppressed = true` — the raw view the
  /// suppression-dead analysis and the --json mode need.
  bool apply_suppressions = true;
  /// Project-model injection (pass 1 → pass 2): type names — aliases or
  /// typedefs, possibly defined in another header — known to resolve
  /// transitively to std::unordered_map/std::unordered_set.
  std::set<std::string> unordered_aliases;
  /// Project-model injection: struct/class member names whose declared
  /// type resolves to an unordered container; `for (auto& x : obj.member)`
  /// in another TU is hash-order iteration even though the declaring
  /// header is out of view.
  std::set<std::string> unordered_members;
  /// True only for files under src/phylo/kernels/: raw SIMD intrinsics
  /// (`_mm*`), vector register types (`__m256d`, ...), `<immintrin.h>`
  /// includes, and `__AVX*__` preprocessor guards are confined to the
  /// kernel module so the engine and search layers stay ISA-neutral
  /// (DESIGN.md §14). Everywhere else they fire intrinsics-confined.
  bool intrinsics_allowed = false;
};

/// All rule ids the engine knows (suppressions must name one of these).
const std::vector<std::string>& rule_ids();

/// Lint one source file already loaded into `text`. `path` is used only
/// for reporting. Findings come back sorted by (line, rule).
std::vector<Finding> lint_source(std::string_view path, std::string_view text,
                                 const Options& options);

/// Collect the (well-formed) suppressions present in `text`, for the
/// docs-inventory cross-check, the dead-suppression analysis, and
/// `--list-suppressions`.
std::vector<Suppression> collect_suppressions(std::string_view path,
                                              std::string_view text);

/// Stable report line: `<file>:<line> <rule-id> <message>`.
std::string format(const Finding& finding);

/// Stable machine-readable report: a JSON array of objects with exactly
/// the keys {"file", "line", "rule", "message", "suppressed"} in that
/// order, sorted like the text report. Safe for any message content
/// (escapes quotes, backslashes, and control characters).
std::string to_json(const std::vector<Finding>& findings);

namespace detail {

/// The file with comments and string/char literals blanked to spaces
/// (newlines kept), shared between the per-file rules and the project
/// model so both passes agree on what counts as code.
std::string code_view(std::string_view text);

/// Scan `code` (a code_view) for unordered-container declarations:
/// `vars` receives declared variable/member names, `aliases` receives
/// names bound with `using NAME = std::unordered_{map,set}<...>`.
void collect_unordered_names(const std::string& code,
                             std::set<std::string>* vars,
                             std::set<std::string>* aliases);

}  // namespace detail

}  // namespace lattice::lint
