// lattice-lint CLI — the project-wide driver. Walks src/ plus the
// consumer trees (bench/, examples/, tools/), builds the project model
// (include graph + cross-header unordered-container index, see model.hpp),
// and runs the full rule catalog over it: per-file determinism rules with
// the model's cross-TU knowledge injected, layering-DAG enforcement,
// include-cycle detection, and the dead-suppression audit. Exit status:
// 0 clean, 1 findings, 2 usage/I/O/config error.
//
// Usage:
//   lattice-lint [--src DIR] [--root DIR]... [--layering FILE] [--json]
//                [--headers] [--docs FILE] [--list-suppressions]
//                [--compiler CXX] [files...]
//
//   --src DIR            module root to walk (default: src); its immediate
//                        children are the modules of the layering DAG
//   --root DIR           additional consumer tree to walk (repeatable;
//                        bench, examples, tools). Consumer files join the
//                        include graph but get no determinism rules.
//   --layering FILE      enforce the module DAG declared in FILE
//                        (layering-violation / layering-cycle); a
//                        malformed FILE is a usage error, not a pass
//   --json               emit the findings as a JSON array (stable schema:
//                        file, line, rule, message, suppressed) instead of
//                        text; suppressed findings are included, flagged
//   --headers            also check every .hpp under --src compiles
//                        standalone via a generated TU
//   --docs FILE          cross-check suppressions against the inventory
//                        table in FILE, in both directions
//                        (suppression-undocumented / stale row -> dead)
//   --list-suppressions  print `file:line rule — reason` for every
//                        suppression and exit 0
//   --compiler CXX       compiler for --headers (default: $CXX, else c++)
//   files...             lint only these files (the model is built over
//                        just them; project rules see a partial graph)
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "lattice-lint/lint.hpp"
#include "lattice-lint/model.hpp"

namespace fs = std::filesystem;
using lattice::lint::AnalysisOptions;
using lattice::lint::FileEntry;
using lattice::lint::Finding;
using lattice::lint::Layering;
using lattice::lint::ProjectModel;
using lattice::lint::Suppression;

namespace {

// Modules under src/ whose code must be bit-deterministic. Wall time and
// ambient RNG are allowed only in obs/ (pure observation) and util/ (the
// seeded Rng itself, the thread pool's condition variables).
const std::set<std::string> kDeterministicModules = {
    "sim", "core", "grid", "boinc", "phylo", "fault", "net"};

// Modules holding the scheduler's per-decision paths (matchmaking,
// ranking): std::sort and friends are audit points there (decision-sort).
const std::set<std::string> kDecisionModules = {"grid", "core"};

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool is_source(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

// Portable-ish shell quoting for the header-check system() command.
std::string shq(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

struct HeaderCheck {
  fs::path header;
  bool ok = false;
  std::string diagnostics;
};

// header-self-contained: every public header must compile on its own, so a
// consumer never depends on include-order luck. Each header gets a
// generated TU `#include "rel/path.hpp"` compiled with -fsyntax-only.
std::vector<HeaderCheck> check_headers(const fs::path& src_root,
                                       const std::vector<fs::path>& headers,
                                       const std::string& compiler) {
  std::vector<HeaderCheck> checks(headers.size());
  const fs::path tmp_root =
      fs::temp_directory_path() / "lattice-lint-headers";
  std::error_code ec;
  fs::create_directories(tmp_root, ec);
  std::size_t n_threads = std::thread::hardware_concurrency();
  if (n_threads == 0) n_threads = 1;
  n_threads = std::min<std::size_t>(n_threads, headers.size());
  std::vector<std::thread> pool;
  std::atomic<std::size_t> next{0};
  auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= headers.size()) return;
      const fs::path& header = headers[i];
      const std::string rel =
          fs::relative(header, src_root).generic_string();
      std::string stem = rel;
      for (char& c : stem) {
        if (c == '/' || c == '\\') c = '_';
      }
      const fs::path tu = tmp_root / (stem + ".tu.cpp");
      const fs::path err = tmp_root / (stem + ".err");
      {
        std::ofstream out(tu);
        out << "#include \"" << rel << "\"\n";
        out << "int lattice_lint_header_anchor_" << i << ";\n";
      }
      const std::string cmd = shq(compiler) +
                              " -std=c++20 -fsyntax-only -I" +
                              shq(src_root.string()) + " " +
                              shq(tu.string()) + " 2>" + shq(err.string());
      const int rc = std::system(cmd.c_str());
      checks[i].header = header;
      checks[i].ok = rc == 0;
      if (rc != 0) checks[i].diagnostics = read_file(err);
    }
  };
  for (std::size_t t = 0; t < n_threads; ++t) pool.emplace_back(work);
  for (auto& t : pool) t.join();
  return checks;
}

// One inventory row of the docs suppression table:
// `| `src/path.cpp` (context) | `rule-id` | why |`
struct InventoryRow {
  int line = 0;
  std::string file;
  std::string rule;
};

std::vector<InventoryRow> parse_inventory(const std::string& doc_text) {
  static const std::regex row_re(
      R"re(^\|\s*`([^`]*/[^`]*)`[^|]*\|\s*`([^`]+)`)re");
  std::vector<InventoryRow> rows;
  std::istringstream lines(doc_text);
  int line_no = 0;
  for (std::string line; std::getline(lines, line);) {
    ++line_no;
    std::smatch m;
    if (!std::regex_search(line, m, row_re)) continue;
    const std::string rule = m[2];
    const auto& ids = lattice::lint::rule_ids();
    if (std::find(ids.begin(), ids.end(), rule) == ids.end()) continue;
    rows.push_back(InventoryRow{line_no, m[1], rule});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path src_root = "src";
  std::vector<fs::path> extra_roots;
  std::string layering_file;
  bool json = false;
  bool headers = false;
  bool list_suppressions = false;
  std::string docs;
  std::string compiler;
  if (const char* env = std::getenv("CXX")) compiler = env;
  if (compiler.empty()) compiler = "c++";
  std::vector<fs::path> explicit_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--src" && i + 1 < argc) {
      src_root = argv[++i];
    } else if (arg == "--root" && i + 1 < argc) {
      extra_roots.emplace_back(argv[++i]);
    } else if (arg == "--layering" && i + 1 < argc) {
      layering_file = argv[++i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--headers") {
      headers = true;
    } else if (arg == "--docs" && i + 1 < argc) {
      docs = argv[++i];
    } else if (arg == "--list-suppressions") {
      list_suppressions = true;
    } else if (arg == "--compiler" && i + 1 < argc) {
      compiler = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "lattice-lint: unknown option " << arg << "\n";
      return 2;
    } else {
      explicit_files.emplace_back(arg);
    }
  }

  if (!fs::is_directory(src_root)) {
    std::cerr << "lattice-lint: source root " << src_root
              << " is not a directory\n";
    return 2;
  }

  std::vector<fs::path> files;
  if (!explicit_files.empty()) {
    files = explicit_files;
  } else {
    std::vector<fs::path> roots{src_root};
    roots.insert(roots.end(), extra_roots.begin(), extra_roots.end());
    for (const fs::path& root : roots) {
      if (!fs::is_directory(root)) {
        std::cerr << "lattice-lint: root " << root
                  << " is not a directory\n";
        return 2;
      }
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && is_source(entry.path())) {
          files.push_back(entry.path());
        }
      }
    }
  }
  std::sort(files.begin(), files.end());

  // Pass 1: load everything and build the project model.
  std::vector<FileEntry> entries;
  std::vector<fs::path> header_files;
  entries.reserve(files.size());
  for (const fs::path& file : files) {
    entries.push_back(FileEntry{file.generic_string(), read_file(file)});
    if (file.extension() == ".hpp" &&
        file.generic_string().rfind(src_root.generic_string() + "/", 0) ==
            0) {
      header_files.push_back(file);
    }
  }
  const ProjectModel model =
      lattice::lint::build_model(entries, src_root.generic_string());

  std::vector<Suppression> suppressions;
  for (const FileEntry& e : entries) {
    for (Suppression s :
         lattice::lint::collect_suppressions(e.path, e.text)) {
      suppressions.push_back(std::move(s));
    }
  }

  if (list_suppressions) {
    for (const Suppression& s : suppressions) {
      std::cout << s.file << ':' << s.line << ' ' << s.rule << " — "
                << s.reason << "\n";
    }
    return 0;
  }

  Layering layering;
  if (!layering_file.empty()) {
    const std::string text = read_file(layering_file);
    if (text.empty()) {
      std::cerr << "lattice-lint: cannot read layering config "
                << layering_file << "\n";
      return 2;
    }
    std::vector<std::string> errors;
    layering = lattice::lint::parse_layering(text, &errors);
    if (!errors.empty()) {
      for (const std::string& e : errors) {
        std::cerr << "lattice-lint: " << e << "\n";
      }
      return 2;  // a typo'd DAG must not silently allow everything
    }
  }

  // Pass 2: the full rule catalog over the model. Suppressed findings are
  // kept (flagged) so --json shows the audit surface; the text report and
  // the exit status count only active ones.
  AnalysisOptions analysis;
  analysis.deterministic_modules = kDeterministicModules;
  analysis.decision_modules = kDecisionModules;
  if (!layering_file.empty()) analysis.layering = &layering;
  analysis.audit_suppressions = true;
  analysis.apply_suppressions = false;
  analysis.src_root = src_root.generic_string();
  std::vector<Finding> findings =
      lattice::lint::analyze_project(entries, model, analysis);

  // Docs inventory cross-check, both directions: every suppression must be
  // listed (file and rule id on one row), and every row must still have a
  // live suppression behind it — a stale row is a suppression-dead finding
  // on the docs file itself.
  if (!docs.empty()) {
    const std::string doc_text = read_file(docs);
    if (doc_text.empty()) {
      std::cerr << "lattice-lint: cannot read docs inventory " << docs
                << "\n";
      return 2;
    }
    std::istringstream lines(doc_text);
    std::vector<std::string> doc_lines;
    for (std::string line; std::getline(lines, line);) {
      doc_lines.push_back(line);
    }
    for (const Suppression& s : suppressions) {
      bool listed = false;
      for (const std::string& line : doc_lines) {
        if (line.find(s.file) != std::string::npos &&
            line.find(s.rule) != std::string::npos) {
          listed = true;
          break;
        }
      }
      if (!listed) {
        findings.push_back(
            Finding{s.file, s.line, "suppression-undocumented",
                    "allow(" + s.rule +
                        ") is not listed in the suppression inventory in " +
                        docs,
                    false});
      }
    }
    for (const InventoryRow& row : parse_inventory(doc_text)) {
      const bool live = std::any_of(
          suppressions.begin(), suppressions.end(),
          [&](const Suppression& s) {
            return s.file == row.file && s.rule == row.rule;
          });
      if (!live) {
        findings.push_back(Finding{
            docs, row.line, "suppression-dead",
            "inventory row for `" + row.file + "` / allow(" + row.rule +
                ") has no matching suppression left in the tree — delete "
                "the row",
            false});
      }
    }
  }

  if (headers) {
    for (const HeaderCheck& check :
         check_headers(src_root, header_files, compiler)) {
      if (!check.ok) {
        findings.push_back(Finding{
            check.header.generic_string(), 1, "header-self-contained",
            "header does not compile standalone (generated TU failed)",
            false});
        std::cerr << check.diagnostics;
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  std::size_t active = 0;
  for (const Finding& f : findings) {
    if (!f.suppressed) ++active;
  }
  if (json) {
    std::cout << lattice::lint::to_json(findings) << "\n";
    return active == 0 ? 0 : 1;
  }
  for (const Finding& f : findings) {
    if (f.suppressed) continue;
    std::cout << lattice::lint::format(f) << "\n";
  }
  if (active == 0) {
    std::cout << "lattice-lint: " << files.size() << " files clean ("
              << suppressions.size() << " audited suppressions)\n";
    return 0;
  }
  std::cout << "lattice-lint: " << active << " finding(s)\n";
  return 1;
}
