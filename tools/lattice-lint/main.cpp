// lattice-lint CLI — walks src/ and enforces the project's determinism
// invariants (see lint.hpp for the rule catalog and docs/LINTING.md for the
// rationale). Exit status: 0 clean, 1 findings, 2 usage/I/O error.
//
// Usage:
//   lattice-lint [--src DIR] [--headers] [--docs FILE]
//                [--list-suppressions] [--compiler CXX] [files...]
//
//   --src DIR            source root to walk (default: src)
//   --headers            also check every .hpp compiles standalone via a
//                        generated TU (rule header-self-contained)
//   --docs FILE          cross-check each suppression against the inventory
//                        table in FILE (rule suppression-undocumented)
//   --list-suppressions  print `file:line rule — reason` for every
//                        suppression and exit 0
//   --compiler CXX       compiler for --headers (default: $CXX, else c++)
//   files...             lint only these files (paths still classified by
//                        their directory under --src)
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "lattice-lint/lint.hpp"

namespace fs = std::filesystem;
using lattice::lint::Finding;
using lattice::lint::Options;
using lattice::lint::Suppression;

namespace {

// Directories under src/ whose code must be bit-deterministic. Wall time
// and ambient RNG are allowed only in obs/ (pure observation) and util/
// (the seeded Rng itself, the thread pool's condition variables).
const std::set<std::string> kDeterministicDirs = {
    "sim", "core", "grid", "boinc", "phylo", "fault", "net"};

// Directories holding the scheduler's per-decision paths (matchmaking,
// ranking): std::sort and friends are audit points there (decision-sort).
const std::set<std::string> kDecisionDirs = {"grid", "core"};

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool is_source(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp";
}

// First path component below the source root ("src/sim/x.cpp" -> "sim").
std::string top_dir(const fs::path& root, const fs::path& path) {
  const fs::path rel = fs::relative(path, root);
  return rel.begin() != rel.end() ? rel.begin()->string() : std::string();
}

// Portable-ish shell quoting for the header-check system() command.
std::string shq(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out += c;
    }
  }
  out += "'";
  return out;
}

struct HeaderCheck {
  fs::path header;
  bool ok = false;
  std::string diagnostics;
};

// header-self-contained: every public header must compile on its own, so a
// consumer never depends on include-order luck. Each header gets a
// generated TU `#include "rel/path.hpp"` compiled with -fsyntax-only.
std::vector<HeaderCheck> check_headers(const fs::path& src_root,
                                       const std::vector<fs::path>& headers,
                                       const std::string& compiler) {
  std::vector<HeaderCheck> checks(headers.size());
  const fs::path tmp_root =
      fs::temp_directory_path() / "lattice-lint-headers";
  std::error_code ec;
  fs::create_directories(tmp_root, ec);
  std::size_t n_threads = std::thread::hardware_concurrency();
  if (n_threads == 0) n_threads = 1;
  n_threads = std::min<std::size_t>(n_threads, headers.size());
  std::vector<std::thread> pool;
  std::atomic<std::size_t> next{0};
  auto work = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= headers.size()) return;
      const fs::path& header = headers[i];
      const std::string rel =
          fs::relative(header, src_root).generic_string();
      std::string stem = rel;
      for (char& c : stem) {
        if (c == '/' || c == '\\') c = '_';
      }
      const fs::path tu = tmp_root / (stem + ".tu.cpp");
      const fs::path err = tmp_root / (stem + ".err");
      {
        std::ofstream out(tu);
        out << "#include \"" << rel << "\"\n";
        out << "int lattice_lint_header_anchor_" << i << ";\n";
      }
      const std::string cmd = shq(compiler) +
                              " -std=c++20 -fsyntax-only -I" +
                              shq(src_root.string()) + " " +
                              shq(tu.string()) + " 2>" + shq(err.string());
      const int rc = std::system(cmd.c_str());
      checks[i].header = header;
      checks[i].ok = rc == 0;
      if (rc != 0) checks[i].diagnostics = read_file(err);
    }
  };
  for (std::size_t t = 0; t < n_threads; ++t) pool.emplace_back(work);
  for (auto& t : pool) t.join();
  return checks;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path src_root = "src";
  bool headers = false;
  bool list_suppressions = false;
  std::string docs;
  std::string compiler;
  if (const char* env = std::getenv("CXX")) compiler = env;
  if (compiler.empty()) compiler = "c++";
  std::vector<fs::path> explicit_files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--src" && i + 1 < argc) {
      src_root = argv[++i];
    } else if (arg == "--headers") {
      headers = true;
    } else if (arg == "--docs" && i + 1 < argc) {
      docs = argv[++i];
    } else if (arg == "--list-suppressions") {
      list_suppressions = true;
    } else if (arg == "--compiler" && i + 1 < argc) {
      compiler = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "lattice-lint: unknown option " << arg << "\n";
      return 2;
    } else {
      explicit_files.emplace_back(arg);
    }
  }

  if (!fs::is_directory(src_root)) {
    std::cerr << "lattice-lint: source root " << src_root
              << " is not a directory\n";
    return 2;
  }

  std::vector<fs::path> files;
  if (!explicit_files.empty()) {
    files = explicit_files;
  } else {
    for (const auto& entry : fs::recursive_directory_iterator(src_root)) {
      if (entry.is_regular_file() && is_source(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  std::vector<Suppression> suppressions;
  std::vector<fs::path> header_files;
  for (const fs::path& file : files) {
    const std::string text = read_file(file);
    Options options;
    const std::string dir = top_dir(src_root, file);
    options.deterministic = kDeterministicDirs.count(dir) > 0;
    options.decision_path = kDecisionDirs.count(dir) > 0;
    const std::string display = file.generic_string();
    for (Finding f : lattice::lint::lint_source(display, text, options)) {
      findings.push_back(std::move(f));
    }
    for (Suppression s :
         lattice::lint::collect_suppressions(display, text)) {
      suppressions.push_back(std::move(s));
    }
    if (file.extension() == ".hpp") header_files.push_back(file);
  }

  if (list_suppressions) {
    for (const Suppression& s : suppressions) {
      std::cout << s.file << ':' << s.line << ' ' << s.rule << " — "
                << s.reason << "\n";
    }
    return 0;
  }

  // Docs inventory cross-check: every suppression must be listed (file and
  // rule id on one line) in the docs inventory, so the audit trail in
  // docs/LINTING.md can never silently lag the tree.
  if (!docs.empty()) {
    const std::string doc_text = read_file(docs);
    if (doc_text.empty()) {
      std::cerr << "lattice-lint: cannot read docs inventory " << docs
                << "\n";
      return 2;
    }
    std::istringstream lines(doc_text);
    std::vector<std::string> doc_lines;
    for (std::string line; std::getline(lines, line);) {
      doc_lines.push_back(line);
    }
    for (const Suppression& s : suppressions) {
      bool listed = false;
      for (const std::string& line : doc_lines) {
        if (line.find(s.file) != std::string::npos &&
            line.find(s.rule) != std::string::npos) {
          listed = true;
          break;
        }
      }
      if (!listed) {
        findings.push_back(
            Finding{s.file, s.line, "suppression-undocumented",
                    "allow(" + s.rule +
                        ") is not listed in the suppression inventory in " +
                        docs});
      }
    }
  }

  if (headers) {
    for (const HeaderCheck& check :
         check_headers(src_root, header_files, compiler)) {
      if (!check.ok) {
        findings.push_back(Finding{
            check.header.generic_string(), 1, "header-self-contained",
            "header does not compile standalone (generated TU failed)"});
        std::cerr << check.diagnostics;
      }
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (const Finding& f : findings) {
    std::cout << lattice::lint::format(f) << "\n";
  }
  if (findings.empty()) {
    std::cout << "lattice-lint: " << files.size() << " files clean ("
              << suppressions.size() << " audited suppressions)\n";
    return 0;
  }
  std::cout << "lattice-lint: " << findings.size() << " finding(s)\n";
  return 1;
}
