#include "lattice-lint/model.hpp"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <regex>
#include <sstream>

namespace lattice::lint {
namespace {

// ---------------------------------------------------------------------------
// Path helpers (pure string work: the model never touches the filesystem,
// so tests can feed synthetic trees).
// ---------------------------------------------------------------------------

std::string dirname_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// Collapse "." and ".." segments ("a/b/../c" -> "a/c").
std::string normalize(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t slash = path.find('/', start);
    const std::size_t end = slash == std::string::npos ? path.size() : slash;
    const std::string part = path.substr(start, end - start);
    if (part == "..") {
      if (!parts.empty()) parts.pop_back();
    } else if (!part.empty() && part != ".") {
      parts.push_back(part);
    }
    if (slash == std::string::npos) break;
    start = slash + 1;
  }
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += '/';
    out += parts[i];
  }
  return out;
}

std::string first_component(const std::string& path) {
  const std::size_t slash = path.find('/');
  return slash == std::string::npos ? path : path.substr(0, slash);
}

std::string module_of(const std::string& path, const std::string& src_root) {
  const std::string prefix = src_root + "/";
  if (path.rfind(prefix, 0) == 0) {
    return first_component(path.substr(prefix.size()));
  }
  return first_component(path);
}

bool under_src(const std::string& path, const std::string& src_root) {
  return path.rfind(src_root + "/", 0) == 0;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_ws(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream in(s);
  for (std::string tok; in >> tok;) out.push_back(tok);
  return out;
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '\n') {
      lines.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Include scan: quoted includes only (system headers are not project
// edges), taken from the raw line but only when the line is a real
// preprocessor directive — string literals that *mention* includes (test
// fixtures, generated-TU writers) start with other tokens and never match.
// ---------------------------------------------------------------------------

struct RawInclude {
  int line;
  std::string raw;
};

std::vector<RawInclude> scan_includes(const std::string& text) {
  static const std::regex inc_re(
      R"re(^\s*#\s*include\s+"([^"]+)")re");
  std::vector<RawInclude> out;
  const auto lines = split_lines(text);
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    if (std::regex_search(lines[i], m, inc_re)) {
      out.push_back(RawInclude{static_cast<int>(i) + 1, m[1]});
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Layering
// ---------------------------------------------------------------------------

Layering parse_layering(std::string_view text,
                        std::vector<std::string>* errors) {
  Layering layering;
  std::string section;
  int line_no = 0;
  for (const std::string& raw : split_lines(std::string(text))) {
    ++line_no;
    std::string line = raw;
    const std::size_t hash = line.find_first_of("#;");
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        if (errors) {
          errors->push_back("layering.ini:" + std::to_string(line_no) +
                            " malformed section header '" + line + "'");
        }
        continue;
      }
      section = line.substr(1, line.size() - 2);
      if (section != "layers" && section != "consumers" && errors) {
        errors->push_back("layering.ini:" + std::to_string(line_no) +
                          " unknown section [" + section + "]");
      }
      continue;
    }
    if (section == "layers") {
      const std::vector<std::string> modules = split_ws(line);
      for (const std::string& m : modules) {
        if (layering.layer_of.count(m) != 0 && errors) {
          errors->push_back("layering.ini:" + std::to_string(line_no) +
                            " module '" + m + "' listed twice");
        }
        layering.layer_of[m] =
            static_cast<int>(layering.layers.size());
      }
      layering.layers.push_back(modules);
    } else if (section == "consumers") {
      for (const std::string& m : split_ws(line)) {
        layering.consumers.insert(m);
      }
    } else if (errors) {
      errors->push_back("layering.ini:" + std::to_string(line_no) +
                        " entry outside a [layers]/[consumers] section");
    }
  }
  if (layering.layers.empty() && errors) {
    errors->push_back("layering.ini declares no [layers]");
  }
  return layering;
}

// ---------------------------------------------------------------------------
// Model construction
// ---------------------------------------------------------------------------

const ModelFile* ProjectModel::file(std::string_view path) const {
  const auto it = std::lower_bound(
      files.begin(), files.end(), path,
      [](const ModelFile& f, std::string_view p) { return f.path < p; });
  return it != files.end() && it->path == path ? &*it : nullptr;
}

ProjectModel build_model(const std::vector<FileEntry>& entries,
                         std::string_view src_root) {
  const std::string root(src_root);
  ProjectModel model;
  std::set<std::string> paths;
  for (const FileEntry& e : entries) paths.insert(e.path);

  // Pass 1a: the include graph. Resolution mirrors the build's include
  // dirs: relative to the including file, then -I<src_root>, then the
  // includer's own top-level tree (tools/ compiles with -Itools).
  for (const FileEntry& e : entries) {
    ModelFile f;
    f.path = e.path;
    f.module = module_of(e.path, root);
    const std::string dir = dirname_of(e.path);
    const std::string top = first_component(e.path);
    for (const RawInclude& inc : scan_includes(e.text)) {
      for (const std::string& candidate :
           {normalize(dir.empty() ? inc.raw : dir + "/" + inc.raw),
            normalize(root + "/" + inc.raw), normalize(top + "/" + inc.raw),
            normalize(inc.raw)}) {
        if (paths.count(candidate) != 0) {
          f.includes.push_back(IncludeEdge{inc.line, candidate, inc.raw});
          break;
        }
      }
    }
    model.files.push_back(std::move(f));
  }
  std::sort(model.files.begin(), model.files.end(),
            [](const ModelFile& a, const ModelFile& b) {
              return a.path < b.path;
            });

  // Pass 1b: the cross-header symbol index, over src files only (the
  // deterministic rules do not apply to consumer trees, and test fixtures
  // there must not pollute the index). Aliases chain to a fixpoint:
  //   using HostMap = std::unordered_map<...>;   (header A)
  //   using Pool = HostMap;                      (header B)
  //   typedef Pool Cohort;                       (header C)
  // all three names resolve to unordered.
  std::vector<std::string> src_code;
  std::vector<const ModelFile*> src_files;
  for (const FileEntry& e : entries) {
    if (!under_src(e.path, root)) continue;
    src_code.push_back(detail::code_view(e.text));
    src_files.push_back(model.file(e.path));
  }
  for (const std::string& code : src_code) {
    std::set<std::string> vars;
    detail::collect_unordered_names(code, &vars, &model.unordered_aliases);
    for (const std::string& v : vars) model.unordered_members.insert(v);
  }
  // typedef std::unordered_map<...> Name;
  static const std::regex typedef_direct_re(
      R"(typedef\s+[^;]*\bunordered_(?:map|set)\s*<[^;]*>\s*(\w+)\s*;)");
  for (const std::string& code : src_code) {
    for (auto it = std::sregex_iterator(code.begin(), code.end(),
                                        typedef_direct_re);
         it != std::sregex_iterator(); ++it) {
      model.unordered_aliases.insert((*it)[1]);
    }
  }
  // Chase alias-of-alias chains across headers to a fixpoint.
  bool grew = true;
  while (grew) {
    grew = false;
    for (const std::string& alias :
         std::vector<std::string>(model.unordered_aliases.begin(),
                                  model.unordered_aliases.end())) {
      const std::regex using_re(
          R"(using\s+(\w+)\s*=\s*(?:\w+\s*::\s*)*)" + alias + R"(\s*;)");
      const std::regex typedef_re(
          R"(typedef\s+(?:\w+\s*::\s*)*)" + alias + R"(\s+(\w+)\s*;)");
      for (const std::string& code : src_code) {
        for (auto it =
                 std::sregex_iterator(code.begin(), code.end(), using_re);
             it != std::sregex_iterator(); ++it) {
          grew |= model.unordered_aliases.insert((*it)[1]).second;
        }
        for (auto it =
                 std::sregex_iterator(code.begin(), code.end(), typedef_re);
             it != std::sregex_iterator(); ++it) {
          grew |= model.unordered_aliases.insert((*it)[1]).second;
        }
      }
    }
  }
  // Members/variables declared with an alias type:  HostMap hosts_;
  for (const std::string& alias : model.unordered_aliases) {
    const std::regex decl_re(
        "\\b" + alias + R"(\s+(\w+)\s*[;={(])");
    for (const std::string& code : src_code) {
      for (auto it = std::sregex_iterator(code.begin(), code.end(), decl_re);
           it != std::sregex_iterator(); ++it) {
        model.unordered_members.insert((*it)[1]);
      }
    }
  }
  return model;
}

// ---------------------------------------------------------------------------
// Layering validation + cycle detection
// ---------------------------------------------------------------------------

std::vector<Finding> check_layering(const ProjectModel& model,
                                    const Layering& layering) {
  std::vector<Finding> findings;
  std::set<std::string> undeclared_reported;
  for (const ModelFile& f : model.files) {
    const bool in_dag = layering.layer_of.count(f.module) != 0;
    const bool consumer = layering.consumers.count(f.module) != 0 ||
                          (!in_dag && !under_src(f.path, "src"));
    // Consumer trees (bench, examples, tools) may include anything; src
    // modules must be declared in the DAG — an undeclared one would
    // otherwise silently escape every constraint.
    if (!in_dag && !consumer && undeclared_reported.insert(f.module).second) {
      findings.push_back(Finding{
          f.path, 1, "layering-violation",
          "src module '" + f.module +
              "' is not declared in layering.ini — every module must have "
              "a layer",
          false});
    }
    for (const IncludeEdge& edge : f.includes) {
      const ModelFile* target = model.file(edge.target);
      if (target == nullptr) continue;
      if (f.module == target->module) continue;
      const auto to_layer = layering.layer_of.find(target->module);
      if (layering.consumers.count(target->module) != 0) {
        findings.push_back(Finding{
            f.path, edge.line, "layering-violation",
            "include of consumer tree '" + target->module +
                "' — consumer trees (bench/examples/tools) sit on top of "
                "the DAG and may not be included",
            false});
        continue;
      }
      if (consumer || !in_dag) continue;
      const int from_layer = layering.layer_of.at(f.module);
      if (to_layer == layering.layer_of.end()) {
        findings.push_back(Finding{
            f.path, edge.line, "layering-violation",
            "include of module '" + target->module +
                "' which is not declared in layering.ini — add it to the "
                "DAG (every module must have a layer)",
            false});
        continue;
      }
      if (to_layer->second >= from_layer) {
        std::ostringstream msg;
        msg << "include edge " << f.module << " -> " << target->module
            << " contradicts the layering DAG (" << target->module
            << " is " << (to_layer->second == from_layer ? "in the same layer"
                                                         : "above")
            << "; " << edge.raw << "): depend only on lower layers, or "
            << "move the shared declaration down";
        findings.push_back(Finding{f.path, edge.line, "layering-violation",
                                   msg.str(), false});
      }
    }
  }
  return findings;
}

std::vector<Finding> find_cycles(const ProjectModel& model) {
  std::vector<Finding> findings;

  // Module-granularity: condense the file graph onto modules with one
  // witness edge per (from, to) pair; a module-level cycle (grid <-> boinc
  // through different headers) never shows up as a header loop.
  struct Witness {
    std::string file;
    int line;
  };
  std::map<std::string, std::map<std::string, Witness>> module_edges;
  for (const ModelFile& f : model.files) {
    for (const IncludeEdge& edge : f.includes) {
      const ModelFile* target = model.file(edge.target);
      if (target == nullptr || target->module == f.module) continue;
      module_edges[f.module].emplace(target->module,
                                     Witness{f.path, edge.line});
    }
  }
  {
    std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
    std::vector<std::string> stack;
    std::set<std::string> reported;
    std::function<void(const std::string&)> dfs =
        [&](const std::string& module) {
          color[module] = 1;
          stack.push_back(module);
          for (const auto& [next, witness] : module_edges[module]) {
            if (color[next] == 1) {
              // Reconstruct module cycle from the grey stack.
              auto it = std::find(stack.begin(), stack.end(), next);
              std::ostringstream cyc;
              for (auto p = it; p != stack.end(); ++p) cyc << *p << " -> ";
              cyc << next;
              if (reported.insert(cyc.str()).second) {
                findings.push_back(Finding{
                    witness.file, witness.line, "layering-cycle",
                    "module include cycle: " + cyc.str() +
                        " — break the back-edge (move the shared "
                        "declaration into a lower layer)",
                    false});
              }
            } else if (color[next] == 0) {
              dfs(next);
            }
          }
          stack.pop_back();
          color[module] = 2;
        };
    for (const auto& [module, _] : module_edges) {
      if (color[module] == 0) dfs(module);
    }
  }

  // File-granularity header loops (a.hpp -> b.hpp -> a.hpp): the include
  // guard hides these from the compiler until someone reorders includes.
  {
    std::map<std::string, int> color;
    std::vector<std::string> stack;
    std::set<std::string> reported;
    std::function<void(const ModelFile&)> dfs = [&](const ModelFile& f) {
      color[f.path] = 1;
      stack.push_back(f.path);
      for (const IncludeEdge& edge : f.includes) {
        const ModelFile* target = model.file(edge.target);
        if (target == nullptr) continue;
        if (color[target->path] == 1) {
          auto it = std::find(stack.begin(), stack.end(), target->path);
          std::ostringstream cyc;
          for (auto p = it; p != stack.end(); ++p) cyc << *p << " -> ";
          cyc << target->path;
          if (reported.insert(cyc.str()).second) {
            findings.push_back(Finding{
                f.path, edge.line, "layering-cycle",
                "header include cycle: " + cyc.str(), false});
          }
        } else if (color[target->path] == 0) {
          dfs(*target);
        }
      }
      stack.pop_back();
      color[f.path] = 2;
    };
    for (const ModelFile& f : model.files) {
      if (color[f.path] == 0) dfs(f);
    }
  }
  return findings;
}

// ---------------------------------------------------------------------------
// Whole-project pass 2
// ---------------------------------------------------------------------------

std::vector<Finding> analyze_project(const std::vector<FileEntry>& entries,
                                     const ProjectModel& model,
                                     const AnalysisOptions& options) {
  std::vector<Finding> findings;
  const std::string& src_root = options.src_root;
  for (const FileEntry& e : entries) {
    const std::string module = module_of(e.path, src_root);
    const bool in_src = under_src(e.path, src_root);
    Options per_file;
    per_file.deterministic =
        in_src && options.deterministic_modules.count(module) != 0;
    per_file.decision_path =
        in_src && options.decision_modules.count(module) != 0;
    per_file.apply_suppressions = false;  // raw view; filtered below
    per_file.unordered_aliases = model.unordered_aliases;
    per_file.unordered_members = model.unordered_members;
    // The kernel module is the one place raw SIMD may live; everywhere
    // else intrinsics-confined fires (DESIGN.md §14).
    per_file.intrinsics_allowed =
        e.path.find(src_root + "/phylo/kernels/") != std::string::npos;
    std::vector<Finding> raw = lint_source(e.path, e.text, per_file);

    if (options.audit_suppressions) {
      // A suppression is live iff its rule produces a raw finding exactly
      // at its target line. Driver-level rules (header-self-contained)
      // cannot be audited lexically and are exempt.
      for (const Suppression& s : collect_suppressions(e.path, e.text)) {
        if (s.rule == "header-self-contained") continue;
        const bool live = std::any_of(
            raw.begin(), raw.end(), [&](const Finding& f) {
              return f.line == s.line && f.rule == s.rule;
            });
        if (!live) {
          raw.push_back(Finding{
              e.path, s.line, "suppression-dead",
              "allow(" + s.rule + ") no longer fires here (reason was: " +
                  s.reason +
                  ") — delete the suppression and its inventory row",
              false});
        }
      }
    }
    for (Finding& f : raw) {
      if (f.suppressed && options.apply_suppressions) continue;
      findings.push_back(std::move(f));
    }
  }

  if (options.layering != nullptr) {
    for (Finding& f : check_layering(model, *options.layering)) {
      findings.push_back(std::move(f));
    }
  }
  for (Finding& f : find_cycles(model)) {
    findings.push_back(std::move(f));
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

}  // namespace lattice::lint
