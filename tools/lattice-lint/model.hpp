// lattice-lint project model (pass 1) — see lint.hpp for the rule catalog.
//
// The per-file rules in lint.cpp are deliberately lexer-grade; what they
// cannot see is anything that spans translation units: an #include
// back-edge coupling src/core to src/boinc, a `using HostMap =
// std::unordered_map<...>` alias defined in one header and iterated in
// another TU, or a suppression whose rule stopped firing three PRs ago.
// This pass builds the project-wide view those rules need:
//
//   * the full #include graph over the given roots (src/, bench/,
//     examples/, tools/), with every edge resolved to an in-tree file and
//     classified by module (the first path component under src/, or the
//     root name for the consumer trees);
//   * a symbol index of using-aliases/typedefs and struct/class members
//     that resolve — transitively, across headers — to unordered
//     containers, injected into pass 2 through lint::Options;
//   * the declared module DAG (tools/lattice-lint/layering.ini), with
//     every include edge validated against it (layering-violation) and
//     any include cycle, at file or module granularity, a hard finding
//     (layering-cycle);
//   * the dead-suppression audit: a suppression whose rule produces no raw
//     finding at its site is itself a finding (suppression-dead), so
//     docs/LINTING.md stays a truthful audit trail.
//
// Everything here operates on (path, text) pairs so tests can drive the
// model on synthetic trees without touching the filesystem; main.cpp is
// just the walker that loads real files.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lattice-lint/lint.hpp"

namespace lattice::lint {

/// One file handed to the model: repo-relative generic path + contents.
struct FileEntry {
  std::string path;
  std::string text;
};

/// A resolved `#include "..."` edge.
struct IncludeEdge {
  int line = 0;            // 1-based line of the #include
  std::string target;      // repo-relative path of the included file
  std::string raw;         // the literal between the quotes
};

/// Module layering declaration, parsed from layering.ini. Layers are
/// listed bottom → top; a module may include itself and any module in a
/// strictly lower layer. Consumers (bench, examples, tools, tests) sit on
/// top: they may include every module, and nothing may include them.
struct Layering {
  std::map<std::string, int> layer_of;  // module -> 0-based layer index
  std::vector<std::vector<std::string>> layers;  // bottom → top
  std::set<std::string> consumers;
};

/// Parse layering.ini text. Unknown sections and malformed lines are
/// reported into `errors` (the caller treats any error as fatal: a typo'd
/// DAG must not silently allow everything).
Layering parse_layering(std::string_view text,
                        std::vector<std::string>* errors);

struct ModelFile {
  std::string path;    // repo-relative, generic separators
  std::string module;  // "grid" for src/grid/..., "bench" for bench/...
  std::vector<IncludeEdge> includes;
};

/// The project model: the include graph plus the cross-header symbol
/// index. Built once (pass 1), consumed by every project-level rule and
/// injected into the per-file pass.
struct ProjectModel {
  std::vector<ModelFile> files;  // sorted by path
  /// Alias/typedef names that resolve (transitively, across headers) to an
  /// unordered container.
  std::set<std::string> unordered_aliases;
  /// Struct/class member (or namespace-scope variable) names declared with
  /// an unordered container type or an alias resolving to one.
  std::set<std::string> unordered_members;

  const ModelFile* file(std::string_view path) const;
};

/// Pass 1: resolve includes and build the symbol index. `src_root` names
/// the directory whose immediate children are the modules (normally
/// "src"); files outside it are classified by their first path component.
ProjectModel build_model(const std::vector<FileEntry>& entries,
                         std::string_view src_root = "src");

/// Validate every include edge of `model` against the declared DAG.
/// Only edges whose *including* file belongs to a src module are
/// constrained; consumer trees may include anything. An edge into a module
/// absent from the DAG is a finding too (the DAG must stay total).
std::vector<Finding> check_layering(const ProjectModel& model,
                                    const Layering& layering);

/// Find include cycles: module-granularity first (a back-edge like
/// grid ↔ boinc is a cycle even when no single header loop exists), then
/// file-granularity header loops. Each cycle is reported once, on the
/// lexicographically smallest participant.
std::vector<Finding> find_cycles(const ProjectModel& model);

/// Knobs for analyze_project, mirroring the driver's directory policy.
struct AnalysisOptions {
  /// src modules whose files get the deterministic rule set.
  std::set<std::string> deterministic_modules;
  /// src modules whose files get the decision-sort rule.
  std::set<std::string> decision_modules;
  /// When non-null, layering is enforced.
  const Layering* layering = nullptr;
  /// When true (default), emit a suppression-dead finding for every
  /// suppression whose rule produces no raw finding at its target line.
  bool audit_suppressions = true;
  /// When false, findings covered by suppressions are retained and
  /// flagged (the --json view).
  bool apply_suppressions = true;
  /// Root whose immediate children are the modules (matches build_model).
  std::string src_root = "src";
};

/// Pass 2 over the whole model: per-file rules with the symbol index
/// injected, layering validation, cycle detection, and the
/// dead-suppression audit. Findings come back sorted by (file, line,
/// rule) — the stable report order.
std::vector<Finding> analyze_project(const std::vector<FileEntry>& entries,
                                     const ProjectModel& model,
                                     const AnalysisOptions& options);

}  // namespace lattice::lint
